//! Mandelbrot: OmpSCR's `c_mandel.c` — the poster child for dynamic
//! scheduling. Iteration cost varies wildly across rows (points inside
//! the set run the full iteration budget; points that escape early are
//! cheap), so `(static)` partitions terribly while `(dynamic,1)` wins.
//! The kernel really iterates z ← z² + c, so the imbalance pattern is the
//! genuine fractal one.

use machsim::{Paradigm, Schedule};
use tracer::{AnnotatedProgram, Tracer};

use crate::spec::{BenchSpec, Benchmark};

/// The Mandelbrot kernel.
#[derive(Debug, Clone)]
pub struct Mandelbrot {
    /// Image width (pixels).
    pub width: u64,
    /// Image height (pixels, = parallel tasks: one row per task).
    pub height: u64,
    /// Max iterations per point.
    pub max_iter: u64,
}

impl Mandelbrot {
    /// Tiny instance for tests.
    pub fn small() -> Self {
        Mandelbrot {
            width: 64,
            height: 48,
            max_iter: 64,
        }
    }

    /// Experiment instance.
    pub fn paper() -> Self {
        Mandelbrot {
            width: 256,
            height: 192,
            max_iter: 256,
        }
    }
}

impl AnnotatedProgram for Mandelbrot {
    fn name(&self) -> &str {
        "Mandel-OMP"
    }

    fn run(&self, t: &mut Tracer) {
        // View window: the classic [-2, 0.5] × [-1.25, 1.25].
        let (x0, x1) = (-2.0f64, 0.5f64);
        let (y0, y1) = (-1.25f64, 1.25f64);
        t.par_sec_begin("mandel_rows");
        for row in 0..self.height {
            t.par_task_begin("row");
            let cy = y0 + (y1 - y0) * row as f64 / self.height as f64;
            for col in 0..self.width {
                let cx = x0 + (x1 - x0) * col as f64 / self.width as f64;
                let (mut zx, mut zy) = (0.0f64, 0.0f64);
                let mut it = 0u64;
                while it < self.max_iter && zx * zx + zy * zy < 4.0 {
                    let nzx = zx * zx - zy * zy + cx;
                    zy = 2.0 * zx * zy + cy;
                    zx = nzx;
                    it += 1;
                }
                // ~8 flops per inner iteration, plus the pixel store.
                t.work(8 * it.max(1));
            }
            t.par_task_end();
        }
        t.par_sec_end(false);
    }
}

impl Benchmark for Mandelbrot {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Mandel-OMP".into(),
            paradigm: Paradigm::OpenMp,
            // Dynamic scheduling is the point of this benchmark.
            schedule: Schedule::dynamic1(),
            input_desc: format!("{}x{}x{}", self.width, self.height, self.max_iter),
            footprint_bytes: self.width * self.height * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TaskSeq;
    use tracer::{profile, ProfileOptions};

    #[test]
    fn rows_are_genuinely_imbalanced() {
        let m = Mandelbrot::small();
        let opts = ProfileOptions {
            compress: false,
            ..ProfileOptions::default()
        };
        let r = profile(&m, opts);
        let sec = r.tree.top_level_sections()[0];
        let lens: Vec<u64> = TaskSeq::new(&r.tree, sec)
            .map(|t| r.tree.node(t).length)
            .collect();
        assert_eq!(lens.len() as u64, m.height);
        let max = *lens.iter().max().unwrap() as f64;
        let min = *lens.iter().min().unwrap() as f64;
        assert!(
            max / min > 3.0,
            "fractal imbalance expected: max/min = {}",
            max / min
        );
    }
}
