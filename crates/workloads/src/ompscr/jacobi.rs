//! Jacobi: OmpSCR's 2-D Jacobi relaxation (`c_jacobi01.c`) — a
//! memory-streaming 5-point stencil with two parallel loops per sweep
//! (update + residual/copy). At grid sizes past the LLC it is
//! bandwidth-bound like FT/MG.

use machsim::{Paradigm, Schedule};
use tracer::{AnnotatedProgram, Tracer};

use crate::spec::{BenchSpec, Benchmark};
use crate::vmem::{VAlloc, VArray};

/// The Jacobi kernel.
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// Grid dimension (n×n).
    pub n: u64,
    /// Sweeps.
    pub sweeps: u64,
    /// Rows per parallel task.
    pub rows_per_task: u64,
}

impl Jacobi {
    /// Tiny instance for tests.
    pub fn small() -> Self {
        Jacobi {
            n: 64,
            sweeps: 1,
            rows_per_task: 8,
        }
    }

    /// Experiment instance: 512² × 2 grids of f64 = 4 MB on the 1.5 MB
    /// LLC.
    pub fn paper() -> Self {
        Jacobi {
            n: 512,
            sweeps: 2,
            rows_per_task: 16,
        }
    }

    /// Footprint of the two grids.
    pub fn footprint(&self) -> u64 {
        2 * self.n * self.n * 8
    }
}

impl AnnotatedProgram for Jacobi {
    fn name(&self) -> &str {
        "Jacobi-OMP"
    }

    fn run(&self, t: &mut Tracer) {
        let n = self.n;
        let mut heap = VAlloc::new();
        let u = VArray::alloc(&mut heap, n * n, 8);
        let unew = VArray::alloc(&mut heap, n * n, 8);
        let idx = |i: u64, j: u64| i * n + j;

        // Initialise.
        for i in 0..n * n {
            t.work(2);
            t.write(u.at(i));
        }

        for _sweep in 0..self.sweeps {
            // Stencil update, parallel over row blocks.
            t.par_sec_begin("jacobi_update");
            let mut row = 1u64;
            while row + 1 < n {
                t.par_task_begin("rows");
                let end = (row + self.rows_per_task).min(n - 1);
                for i in row..end {
                    for j in 1..n - 1 {
                        t.read(u.at(idx(i - 1, j)));
                        t.read(u.at(idx(i + 1, j)));
                        t.read(u.at(idx(i, j - 1)));
                        t.read(u.at(idx(i, j + 1)));
                        t.work(5);
                        t.write(unew.at(idx(i, j)));
                    }
                }
                t.par_task_end();
                row = end;
            }
            t.par_sec_end(false);

            // Copy back + residual, parallel over row blocks.
            t.par_sec_begin("jacobi_copy");
            let mut row = 1u64;
            while row + 1 < n {
                t.par_task_begin("rows");
                let end = (row + self.rows_per_task).min(n - 1);
                for i in row..end {
                    for j in 1..n - 1 {
                        t.read(unew.at(idx(i, j)));
                        t.work(3);
                        t.write(u.at(idx(i, j)));
                    }
                }
                t.par_task_end();
                row = end;
            }
            t.par_sec_end(false);
        }
    }
}

impl Benchmark for Jacobi {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "Jacobi-OMP".into(),
            paradigm: Paradigm::OpenMp,
            schedule: Schedule::static_block(),
            input_desc: format!("{}^2/{}MB", self.n, self.footprint() >> 20),
            footprint_bytes: self.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracer::{profile, ProfileOptions};

    #[test]
    fn jacobi_profiles_two_sections_per_sweep() {
        let j = Jacobi::small();
        let r = profile(&j, ProfileOptions::default());
        assert_eq!(r.tree.top_level_sections().len() as u64, 2 * j.sweeps);
    }

    #[test]
    fn large_grid_is_memory_hungry() {
        let j = Jacobi {
            n: 256,
            sweeps: 1,
            rows_per_task: 16,
        };
        let opts = ProfileOptions {
            hierarchy: cachesim::HierarchyConfig::tiny(),
            ..ProfileOptions::default()
        };
        let r = profile(&j, opts);
        assert!(r.counters.mpi() > 0.01, "mpi {}", r.counters.mpi());
    }
}
