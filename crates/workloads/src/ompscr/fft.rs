//! FFT: recursive Cooley–Tukey, the paper's Fig. 1(b) example of
//! recursive + nested parallelism ("OpenMP 2.0 is replaced by Cilk Plus").
//!
//! Each call splits into even/odd halves — annotated as a two-task
//! parallel section (the `cilk_spawn`/`cilk_sync` pair) — then runs the
//! combine loop, itself annotated as a parallel section at large sizes
//! (the `cilk_for`). The split copies and strided combines stream through
//! the cache, making large FFTs bandwidth-hungry (Fig. 12(c) saturates
//! around 3×).

use machsim::{Paradigm, Schedule};
use tracer::{AnnotatedProgram, Tracer};

use crate::spec::{BenchSpec, Benchmark};
use crate::vmem::{VAlloc, VArray};

/// The recursive FFT kernel.
#[derive(Debug, Clone)]
pub struct Fft {
    /// Input length (power of two).
    pub n: u64,
    /// Recursion cutoff: below this, no parallel annotations.
    pub cutoff: u64,
    /// Combine loops shorter than this stay serial.
    pub combine_cutoff: u64,
}

impl Fft {
    /// Tiny instance for tests.
    pub fn small() -> Self {
        Fft {
            n: 1 << 10,
            cutoff: 1 << 8,
            combine_cutoff: 1 << 9,
        }
    }

    /// Experiment instance: 2¹⁷ complex points = 2 MB + 2 MB scratch on
    /// the 1.5 MB simulated LLC (paper: `2048/118MB` vs 12 MB).
    pub fn paper() -> Self {
        Fft {
            n: 1 << 17,
            cutoff: 1 << 11,
            combine_cutoff: 1 << 12,
        }
    }

    /// Footprint: data + scratch arrays of 16-byte complex.
    pub fn footprint(&self) -> u64 {
        2 * self.n * 16
    }
}

/// Recursive worker: FFT of `len` elements of `data[off..]`, with
/// `scratch` as the split buffer.
fn fft_rec(
    t: &mut Tracer,
    data: &VArray,
    scratch: &VArray,
    off: u64,
    len: u64,
    _stride_level: u32,
    cfg: &Fft,
) {
    if len <= 1 {
        return;
    }
    let half = len / 2;

    // Split: copy evens and odds into the scratch halves.
    for i in 0..half {
        t.read(data.at(off + 2 * i));
        t.write(scratch.at(off + i));
        t.read(data.at(off + 2 * i + 1));
        t.write(scratch.at(off + half + i));
        t.work(4);
    }
    // Copy back so recursion operates in place on contiguous halves.
    for i in 0..len {
        t.read(scratch.at(off + i));
        t.write(data.at(off + i));
        t.work(2);
    }

    if len > cfg.cutoff {
        // cilk_spawn FFT(even); FFT(odd); cilk_sync.
        t.par_sec_begin("fft_spawn");
        t.par_task_begin("even");
        fft_rec(t, data, scratch, off, half, _stride_level + 1, cfg);
        t.par_task_end();
        t.par_task_begin("odd");
        fft_rec(t, data, scratch, off + half, half, _stride_level + 1, cfg);
        t.par_task_end();
        t.par_sec_end(false);
    } else {
        fft_rec(t, data, scratch, off, half, _stride_level + 1, cfg);
        fft_rec(t, data, scratch, off + half, half, _stride_level + 1, cfg);
    }

    // Combine: butterflies over the two halves (the Fig. 1(b) cilk_for).
    let butterfly = |t: &mut Tracer, i: u64| {
        t.read(data.at(off + i));
        t.read(data.at(off + half + i));
        t.work(10); // twiddle multiply + add/sub
        t.write(data.at(off + i));
        t.write(data.at(off + half + i));
    };
    if half >= cfg.combine_cutoff {
        let blocks = 8u64;
        let per = half / blocks;
        t.par_sec_begin("fft_combine");
        for b in 0..blocks {
            t.par_task_begin("block");
            let end = if b == blocks - 1 { half } else { (b + 1) * per };
            for i in b * per..end {
                butterfly(t, i);
            }
            t.par_task_end();
        }
        t.par_sec_end(false);
    } else {
        for i in 0..half {
            butterfly(t, i);
        }
    }
}

impl AnnotatedProgram for Fft {
    fn name(&self) -> &str {
        "FFT-Cilk"
    }

    fn run(&self, t: &mut Tracer) {
        assert!(
            self.n.is_power_of_two(),
            "FFT length must be a power of two"
        );
        let mut heap = VAlloc::new();
        let data = VArray::alloc(&mut heap, self.n, 16);
        let scratch = VArray::alloc(&mut heap, self.n, 16);
        // Initialise input (serial).
        for i in 0..self.n {
            t.work(3);
            t.write(data.at(i));
        }
        // The whole recursive FFT is one top-level parallel region.
        t.par_sec_begin("fft_root");
        t.par_task_begin("root");
        fft_rec(t, &data, &scratch, 0, self.n, 0, self);
        t.par_task_end();
        t.par_sec_end(false);
    }
}

impl Benchmark for Fft {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "FFT-Cilk".into(),
            paradigm: Paradigm::CilkPlus,
            schedule: Schedule::static_block(),
            input_desc: format!("2^{}/{}MB", self.n.trailing_zeros(), self.footprint() >> 20),
            footprint_bytes: self.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TreeStats;
    use tracer::{profile, ProfileOptions};

    #[test]
    fn fft_tree_is_recursive() {
        let r = profile(&Fft::small(), ProfileOptions::default());
        let stats = TreeStats::gather(&r.tree);
        // log2(1024/256) = 2 spawn levels plus combine sections.
        assert!(
            stats.max_section_depth >= 2,
            "depth {}",
            stats.max_section_depth
        );
        assert_eq!(r.tree.top_level_sections().len(), 1);
    }

    #[test]
    fn fft_work_scales_n_log_n() {
        let small = profile(
            &Fft {
                n: 1 << 9,
                cutoff: 1 << 7,
                combine_cutoff: 1 << 8,
            },
            ProfileOptions::default(),
        );
        let big = profile(
            &Fft {
                n: 1 << 11,
                cutoff: 1 << 7,
                combine_cutoff: 1 << 8,
            },
            ProfileOptions::default(),
        );
        let ratio = big.net_cycles as f64 / small.net_cycles as f64;
        // 4× points → slightly over 4× work (log factor 11/9).
        assert!((4.0..6.5).contains(&ratio), "ratio {ratio}");
    }
}
