//! QSort: recursive quicksort (OmpSCR `c_qsort.c`), parallelised with
//! Cilk-style spawn/sync on the two partitions.
//!
//! The partition pass is inherently serial at each level, so the top
//! levels bound the speedup (paper Fig. 12(d) reaches ≈ 4× on 12 cores).
//! Unlike the other kernels, the control flow depends on the data, so the
//! kernel really sorts a deterministic pseudo-random array while issuing
//! its references through the tracer.

use machsim::{Paradigm, Schedule};
use tracer::{AnnotatedProgram, Tracer};

use crate::spec::{BenchSpec, Benchmark};
use crate::vmem::{VAlloc, VArray};

/// The quicksort kernel.
#[derive(Debug, Clone)]
pub struct QSort {
    /// Element count.
    pub n: usize,
    /// Below this partition size, recursion stays serial.
    pub cutoff: usize,
}

impl QSort {
    /// Tiny instance for tests.
    pub fn small() -> Self {
        QSort {
            n: 2_000,
            cutoff: 256,
        }
    }

    /// Experiment instance (paper: `2048/4MB`; ours: 256k u32 = 1 MB on
    /// the 1.5 MB LLC).
    pub fn paper() -> Self {
        QSort {
            n: 1 << 18,
            cutoff: 1 << 13,
        }
    }

    /// Footprint of the array.
    pub fn footprint(&self) -> u64 {
        self.n as u64 * 4
    }
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

struct Sorter<'a, 't> {
    t: &'a mut Tracer,
    data: Vec<u32>,
    varr: VArray,
    cutoff: usize,
    _lifetime: std::marker::PhantomData<&'t ()>,
}

impl<'a, 't> Sorter<'a, 't> {
    /// Lomuto partition over the inclusive range `[lo, hi]`, issuing real
    /// reads/writes; returns the pivot's final index.
    fn partition(&mut self, lo: usize, hi: usize) -> usize {
        // Median-of-three pivot selection mitigates sorted-input worst
        // cases (and matches typical qsort implementations).
        let mid = lo + (hi - lo) / 2;
        for &k in &[lo, mid, hi] {
            self.t.read(self.varr.at(k as u64));
        }
        self.t.work(6);
        let (a, b, c) = (self.data[lo], self.data[mid], self.data[hi]);
        let pivot_idx = if (a <= b) == (b <= c) {
            mid
        } else if (b <= a) == (a <= c) {
            lo
        } else {
            hi
        };
        self.data.swap(pivot_idx, hi);
        self.t.write(self.varr.at(pivot_idx as u64));
        self.t.write(self.varr.at(hi as u64));

        let pivot = self.data[hi];
        let mut i = lo;
        for j in lo..hi {
            self.t.read(self.varr.at(j as u64));
            self.t.work(2);
            if self.data[j] < pivot {
                self.data.swap(i, j);
                self.t.write(self.varr.at(i as u64));
                self.t.write(self.varr.at(j as u64));
                i += 1;
            }
        }
        self.data.swap(i, hi);
        self.t.write(self.varr.at(i as u64));
        self.t.write(self.varr.at(hi as u64));
        i
    }

    fn sort(&mut self, lo: usize, hi: usize) {
        if lo >= hi {
            return;
        }
        let p = self.partition(lo, hi);
        if hi - lo > self.cutoff {
            // cilk_spawn sort(left); sort(right); cilk_sync.
            self.t.par_sec_begin("qs_spawn");
            self.t.par_task_begin("left");
            if p > lo {
                self.sort(lo, p - 1);
            }
            self.t.par_task_end();
            self.t.par_task_begin("right");
            if p < hi {
                self.sort(p + 1, hi);
            }
            self.t.par_task_end();
            self.t.par_sec_end(false);
        } else {
            if p > lo {
                self.sort(lo, p - 1);
            }
            if p < hi {
                self.sort(p + 1, hi);
            }
        }
    }
}

impl AnnotatedProgram for QSort {
    fn name(&self) -> &str {
        "QSort-Cilk"
    }

    fn run(&self, t: &mut Tracer) {
        let mut heap = VAlloc::new();
        let varr = VArray::alloc(&mut heap, self.n as u64, 4);
        // Deterministic pseudo-random input; writes stream the array.
        let mut data = Vec::with_capacity(self.n);
        let mut x = 0x2545F4914F6CDD1Du64;
        for i in 0..self.n {
            x = xorshift(x);
            data.push((x >> 32) as u32);
            t.work(2);
            t.write(varr.at(i as u64));
        }

        let mut sorter = Sorter {
            t,
            data,
            varr,
            cutoff: self.cutoff,
            _lifetime: std::marker::PhantomData,
        };
        let hi = sorter.data.len() - 1;
        // The whole recursive sort is one top-level parallel region.
        sorter.t.par_sec_begin("qsort_root");
        sorter.t.par_task_begin("root");
        sorter.sort(0, hi);
        sorter.t.par_task_end();
        sorter.t.par_sec_end(false);

        // Verify sortedness (cheap serial scan, also realistic).
        let sorted = sorter.data.windows(2).all(|w| w[0] <= w[1]);
        assert!(sorted, "quicksort produced an unsorted array");
        for i in 0..self.n {
            t.read(varr.at(i as u64));
            t.work(1);
        }
    }
}

impl Benchmark for QSort {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: "QSort-Cilk".into(),
            paradigm: Paradigm::CilkPlus,
            schedule: Schedule::static_block(),
            input_desc: format!("{}/{}KB", self.n, self.footprint() >> 10),
            footprint_bytes: self.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TreeStats;
    use tracer::{profile, ProfileOptions};

    #[test]
    fn qsort_sorts_and_profiles() {
        let r = profile(&QSort::small(), ProfileOptions::default());
        let stats = TreeStats::gather(&r.tree);
        assert!(
            stats.max_section_depth >= 2,
            "depth {}",
            stats.max_section_depth
        );
        assert!(r.net_cycles > 0);
    }

    #[test]
    fn deeper_recursion_with_smaller_cutoff() {
        let a = profile(
            &QSort {
                n: 4_000,
                cutoff: 2_000,
            },
            ProfileOptions::default(),
        );
        let b = profile(
            &QSort {
                n: 4_000,
                cutoff: 250,
            },
            ProfileOptions::default(),
        );
        let da = TreeStats::gather(&a.tree).max_section_depth;
        let db = TreeStats::gather(&b.tree).max_section_depth;
        assert!(db > da, "cutoff 250 depth {db} !> cutoff 2000 depth {da}");
    }
}
