//! The ground-truth runner: execute the *actually parallelised* program
//! on the simulated machine.
//!
//! The paper validates its predictions against real parallelised code on
//! real hardware ("Real" in Fig. 2/11/12). Our stand-in converts a
//! profiled program tree into a [`ParallelProgram`] where every terminal
//! node carries its *measured* compute cycles and its share of the
//! section's *measured* LLC misses (apportioned by length), then runs it
//! under the OpenMP-like or Cilk-like runtime on `machsim`. Memory-bound
//! sections thus genuinely contend for DRAM bandwidth, and the resulting
//! speedups saturate exactly where the machine's memory system says they
//! must — independently of the memory model being evaluated.

use std::collections::HashMap;
use std::rc::Rc;

use cilk_rt::{run_program_cilk_on, CilkOverheads};
use machsim::prog::{POp, ParSection, Paradigm, ParallelProgram, Schedule, TaskBody};
use machsim::{MachineConfig, RunError, RunStats, WorkPacket};
use omp_rt::{run_program_on, OmpOverheads};
use proftree::{visit::expanded_children, NodeId, NodeKind, ProgramTree};
use serde::{Deserialize, Serialize};

/// Options for a ground-truth run.
#[derive(Debug, Clone, Copy)]
pub struct RealOptions {
    /// The simulated machine.
    pub machine: MachineConfig,
    /// Thread/team count of the parallelised program.
    pub threads: u32,
    /// Threading paradigm.
    pub paradigm: Paradigm,
    /// OpenMP schedule.
    pub schedule: Schedule,
    /// OpenMP runtime overheads.
    pub omp_overheads: OmpOverheads,
    /// Cilk runtime overheads.
    pub cilk_overheads: CilkOverheads,
    /// OpenMP 3.0 task-pool overheads.
    pub task_overheads: omp_rt::TaskOverheads,
    /// Scale applied to every task's LLC misses in the parallel run,
    /// modelling serial→parallel cache-trend effects (Table IV rows 1/3).
    /// `1.0` keeps Assumption 4 (misses unchanged); < 1 models the
    /// aggregate-cache-growth (super-linear) case, > 1 the sharing/
    /// conflict-growth case.
    pub miss_scale: f64,
}

impl RealOptions {
    /// Defaults on the scaled Westmere machine.
    pub fn new(threads: u32, paradigm: Paradigm, schedule: Schedule) -> Self {
        RealOptions {
            machine: MachineConfig::westmere_scaled(),
            threads,
            paradigm,
            schedule,
            omp_overheads: OmpOverheads::westmere_scaled(),
            cilk_overheads: CilkOverheads::westmere_scaled(),
            task_overheads: omp_rt::TaskOverheads::westmere_scaled(),
            miss_scale: 1.0,
        }
    }
}

/// Result of a ground-truth run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealResult {
    /// Parallel makespan, cycles.
    pub elapsed_cycles: u64,
    /// Serial time of the profiled tree.
    pub serial_cycles: u64,
    /// The real speedup.
    pub speedup: f64,
    /// Machine statistics of the run.
    pub stats: RunStats,
}

/// Per-section memory intensity: misses per cycle, derived from the
/// section's counters.
fn section_miss_rate(tree: &ProgramTree, sec: NodeId) -> f64 {
    match &tree.node(sec).kind {
        NodeKind::Sec { mem: Some(m), .. } | NodeKind::Pipe { mem: Some(m), .. }
            if m.cycles > 0 =>
        {
            m.llc_misses as f64 / m.cycles as f64
        }
        _ => 0.0,
    }
}

struct Conv<'t> {
    tree: &'t ProgramTree,
    omega0: f64,
    memo: HashMap<NodeId, Rc<TaskBody>>,
    threads: u32,
    schedule: Schedule,
    miss_scale: f64,
}

impl<'t> Conv<'t> {
    /// A terminal node of `len` cycles at `miss_rate` misses/cycle becomes
    /// a packet whose baseline duration equals `len`: the memory-stall
    /// share is `m·ω₀` and the compute share the rest.
    fn packet(&self, len: u64, miss_rate: f64) -> WorkPacket {
        if miss_rate <= 0.0 || len == 0 {
            return WorkPacket::cpu(len);
        }
        // Split the measured length into compute and DRAM-stall shares
        // first…
        let misses = (len as f64 * miss_rate).round();
        let stall = (misses * self.omega0).min(len as f64);
        let misses = (stall / self.omega0).floor() as u64;
        let compute = len - (misses as f64 * self.omega0).round() as u64;
        // …then apply the cache-trend scale to the *misses only*: removed
        // misses take their stall with them (the packet's baseline drops
        // below the serial length — the super-linear case), added misses
        // lengthen it.
        let misses = (misses as f64 * self.miss_scale).round() as u64;
        WorkPacket::new(compute, misses)
    }

    fn task_body(&mut self, task: NodeId, miss_rate: f64) -> Rc<TaskBody> {
        if let Some(b) = self.memo.get(&task) {
            return b.clone();
        }
        let mut ops = Vec::new();
        for child in expanded_children(self.tree, task) {
            let node = self.tree.node(child);
            match &node.kind {
                NodeKind::U => ops.push(POp::Work(self.packet(node.length, miss_rate))),
                NodeKind::L { lock } => ops.push(POp::Locked {
                    lock: *lock,
                    work: self.packet(node.length, miss_rate),
                }),
                NodeKind::Sec { .. } => ops.push(POp::Par(self.section(child, miss_rate))),
                other => unreachable!("invalid node under task: {}", other.tag()),
            }
        }
        let body = Rc::new(TaskBody { ops });
        self.memo.insert(task, body.clone());
        body
    }

    /// Convert a Pipe node into pipeline IR with per-node traffic.
    fn pipe(&mut self, pipe: NodeId) -> machsim::prog::PipeSection {
        let rate = section_miss_rate(self.tree, pipe);
        let mut items = Vec::new();
        let mut stages = 0u32;
        for item in expanded_children(self.tree, pipe) {
            let mut stage_ops: Vec<Vec<POp>> = Vec::new();
            for st in expanded_children(self.tree, item) {
                debug_assert!(matches!(self.tree.node(st).kind, NodeKind::Stage { .. }));
                let mut ops = Vec::new();
                for child in expanded_children(self.tree, st) {
                    let node = self.tree.node(child);
                    match &node.kind {
                        NodeKind::U => ops.push(POp::Work(self.packet(node.length, rate))),
                        NodeKind::L { lock } => ops.push(POp::Locked {
                            lock: *lock,
                            work: self.packet(node.length, rate),
                        }),
                        other => unreachable!("invalid node under stage: {}", other.tag()),
                    }
                }
                stage_ops.push(ops);
            }
            stages = stages.max(stage_ops.len() as u32);
            items.push(Rc::new(machsim::prog::PipeItem { stages: stage_ops }));
        }
        machsim::prog::PipeSection { items, stages }
    }

    fn section(&mut self, sec: NodeId, inherited_rate: f64) -> ParSection {
        let own_rate = section_miss_rate(self.tree, sec);
        let rate = if own_rate > 0.0 {
            own_rate
        } else {
            inherited_rate
        };
        let nowait = matches!(
            &self.tree.node(sec).kind,
            NodeKind::Sec { nowait: true, .. }
        );
        let tasks: Vec<Rc<TaskBody>> = expanded_children(self.tree, sec)
            .map(|t| self.task_body(t, rate))
            .collect();
        ParSection {
            tasks: tasks.into(),
            schedule: self.schedule,
            nowait,
            team: Some(self.threads),
        }
    }
}

/// Convert a profiled tree into the parallelised program it annotates.
pub fn real_program(tree: &ProgramTree, opts: &RealOptions) -> ParallelProgram {
    let mut conv = Conv {
        tree,
        omega0: opts.machine.dram_base_stall,
        memo: HashMap::new(),
        threads: opts.threads,
        schedule: opts.schedule,
        miss_scale: opts.miss_scale,
    };
    let mut ops = Vec::new();
    for child in expanded_children(tree, ProgramTree::ROOT) {
        match &tree.node(child).kind {
            NodeKind::U => ops.push(POp::Work(WorkPacket::cpu(tree.node(child).length))),
            NodeKind::Sec { .. } => {
                let sec = conv.section(child, 0.0);
                ops.push(POp::Par(sec));
            }
            NodeKind::Pipe { .. } => {
                let pipe = conv.pipe(child);
                ops.push(POp::Pipe(pipe));
            }
            other => unreachable!("invalid top-level node {}", other.tag()),
        }
    }
    ParallelProgram { ops }
}

/// Run the parallelised program and report its real speedup.
pub fn run_real(tree: &ProgramTree, opts: &RealOptions) -> Result<RealResult, RunError> {
    let mut machine = machsim::Machine::new(opts.machine);
    run_real_on(tree, opts, &mut machine)
}

/// [`run_real`] with a `prophet-obs` recorder attached to the machine:
/// every scheduler, lock, barrier, chunk and steal event of the run is
/// recorded on the machine's virtual clock.
#[cfg(feature = "obs")]
pub fn run_real_with_obs(
    tree: &ProgramTree,
    opts: &RealOptions,
    obs: prophet_obs::ObsHandle,
) -> Result<RealResult, RunError> {
    let mut machine = machsim::Machine::new(opts.machine);
    machine.attach_obs(obs);
    run_real_on(tree, opts, &mut machine)
}

/// Run the parallelised program on an existing (fresh) machine.
pub fn run_real_on(
    tree: &ProgramTree,
    opts: &RealOptions,
    machine: &mut machsim::Machine,
) -> Result<RealResult, RunError> {
    let program = real_program(tree, opts);
    let has_pipe = program.ops.iter().any(|op| matches!(op, POp::Pipe(_)));
    let stats = match opts.paradigm {
        // Pipelines are hosted by the OpenMP-like runtime's stage threads.
        Paradigm::OpenMp => run_program_on(machine, &program, opts.omp_overheads, opts.threads)?,
        Paradigm::CilkPlus | Paradigm::OmpTask if has_pipe => {
            run_program_on(machine, &program, opts.omp_overheads, opts.threads)?
        }
        Paradigm::CilkPlus => {
            run_program_cilk_on(machine, &program, opts.cilk_overheads, opts.threads)?
        }
        Paradigm::OmpTask => {
            omp_rt::run_program_tasks_on(machine, &program, opts.task_overheads, opts.threads)?
        }
    };
    let serial_cycles = tree.total_length();
    Ok(RealResult {
        elapsed_cycles: stats.elapsed_cycles,
        serial_cycles,
        speedup: serial_cycles as f64 / stats.elapsed_cycles.max(1) as f64,
        stats,
    })
}

/// Sweep thread counts; returns `(threads, speedup)` pairs.
pub fn real_curve(
    tree: &ProgramTree,
    base: &RealOptions,
    thread_counts: &[u32],
) -> Result<Vec<(u32, f64)>, RunError> {
    let mut out = Vec::new();
    for &t in thread_counts {
        let mut o = *base;
        o.threads = t;
        out.push((t, run_real(tree, &o)?.speedup));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::{MemProfile, TreeBuilder};

    fn balanced_tree(n: usize, len: u64) -> ProgramTree {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for _ in 0..n {
            b.begin_task("t").unwrap();
            b.add_compute(len).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.finish().unwrap()
    }

    fn zero_opts(threads: u32) -> RealOptions {
        let mut o = RealOptions::new(threads, Paradigm::OpenMp, Schedule::static1());
        o.machine = MachineConfig::small(threads.max(1));
        o.omp_overheads = OmpOverheads::zero();
        o.cilk_overheads = CilkOverheads::zero();
        o
    }

    #[test]
    fn single_thread_run_matches_serial_time() {
        let tree = balanced_tree(10, 5_000);
        let r = run_real(&tree, &zero_opts(1)).unwrap();
        assert_eq!(r.elapsed_cycles, 50_000);
        assert!((r.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_tree_scales_linearly() {
        let tree = balanced_tree(16, 10_000);
        let r = run_real(&tree, &zero_opts(4)).unwrap();
        assert!((r.speedup - 4.0).abs() < 0.05, "speedup {}", r.speedup);
    }

    #[test]
    fn memory_bound_tree_saturates() {
        // Build a section whose counters say it's extremely memory-bound.
        let mut b = TreeBuilder::new();
        b.begin_sec("mem").unwrap();
        for _ in 0..12 {
            b.begin_task("t").unwrap();
            b.add_compute(600_000).unwrap();
            b.end_task().unwrap();
        }
        let sec = b.end_sec(false).unwrap();
        // All time is DRAM stall: misses = cycles/ω0.
        b.set_section_mem(
            sec,
            MemProfile {
                instructions: 1_000_000,
                cycles: 12 * 600_000,
                llc_misses: 120_000,
                dram_bytes: 120_000 * 64,
                traffic_mbps: 0.0,
            },
        );
        let tree = b.finish().unwrap();

        // A machine whose DRAM supports only ~2 hungry threads.
        let mut opts = zero_opts(12);
        opts.machine = MachineConfig::small(12);
        opts.machine.dram_bytes_per_cycle = 64.0 / 60.0 * 2.0;
        opts.machine.queue_kappa = 0.0;

        let r1 = run_real(&tree, &{
            let mut o = opts;
            o.threads = 1;
            o
        })
        .unwrap();
        let r12 = run_real(&tree, &opts).unwrap();
        let s1 = r1.speedup;
        let s12 = r12.speedup;
        assert!((s1 - 1.0).abs() < 0.05, "s1 {s1}");
        assert!(
            s12 < 3.0,
            "12-thread speedup should saturate near 2, got {s12}"
        );
        assert!(s12 > 1.5, "but it should still beat serial, got {s12}");
    }

    #[test]
    fn packet_conversion_preserves_baseline_length() {
        let conv = Conv {
            tree: &balanced_tree(1, 1),
            omega0: 60.0,
            memo: HashMap::new(),
            threads: 2,
            schedule: Schedule::static1(),
            miss_scale: 1.0,
        };
        for (len, rate) in [(100_000u64, 0.001f64), (5_000, 0.01), (777, 0.0)] {
            let p = conv.packet(len, rate);
            let baseline = p.compute_cycles as f64 + p.llc_misses as f64 * 60.0;
            assert!(
                (baseline - len as f64).abs() <= 60.0,
                "len={len} rate={rate} baseline={baseline}"
            );
        }
    }

    #[test]
    fn cilk_paradigm_runs() {
        let tree = balanced_tree(32, 10_000);
        let mut o = zero_opts(4);
        o.paradigm = Paradigm::CilkPlus;
        let r = run_real(&tree, &o).unwrap();
        assert!(r.speedup > 3.0, "speedup {}", r.speedup);
    }

    #[test]
    fn curve_is_reasonable() {
        let tree = balanced_tree(24, 20_000);
        let mut o = zero_opts(1);
        o.machine = MachineConfig::small(8);
        let curve = real_curve(&tree, &o, &[1, 2, 4, 8]).unwrap();
        assert_eq!(curve.len(), 4);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.95, "curve {curve:?}");
        }
    }
}
