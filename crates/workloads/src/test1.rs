//! `Test1` (paper Fig. 9): randomly generated single-level parallel loops
//! with workload imbalance and up to two critical sections of arbitrary
//! length and contention — including the high-lock-contention,
//! high-parallel-overhead cases.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tracer::{AnnotatedProgram, Tracer};

use crate::shapes::{compute_overhead, Shape};
use crate::spec::{BenchSpec, Benchmark};
use machsim::{Paradigm, Schedule};

/// Parameters of one random Test1 instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Test1Params {
    /// Generator seed (drives per-iteration randomness too).
    pub seed: u64,
    /// Trip count (`i_max`).
    pub i_max: u64,
    /// Workload shape of `ComputeOverhead`.
    pub shape: Shape,
    /// Minimum iteration cost, in work units.
    pub min_cost: u64,
    /// Maximum iteration cost, in work units.
    pub max_cost: u64,
    /// Fractions of an iteration's cost spent in the three unlocked
    /// delays (Fig. 9 `ratio_delay_1/2/3`).
    pub ratio_delay: [f64; 3],
    /// Fractions spent inside lock 1 and lock 2.
    pub ratio_lock: [f64; 2],
    /// Per-iteration probability that each lock is taken (`do_lock1/2`).
    pub lock_prob: [f64; 2],
}

impl Test1Params {
    /// A random instance in the paper's spirit: arbitrary imbalance,
    /// lock lengths, and contention.
    pub fn random(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let i_max = rng.gen_range(16..=200);
        let shape = Shape::ALL[rng.gen_range(0..Shape::ALL.len())];
        let min_cost = rng.gen_range(16_000..=160_000);
        let max_cost = min_cost * rng.gen_range(2u64..=20);
        // Random mixture of delay and lock weights.
        let mut w = [0f64; 5];
        for x in w.iter_mut() {
            *x = rng.gen_range(0.05..1.0);
        }
        // 40% of samples have no lock work at all.
        let lock_scale: f64 = if rng.gen_bool(0.4) { 0.0 } else { 1.0 };
        w[3] *= lock_scale;
        w[4] *= lock_scale;
        let sum: f64 = w.iter().sum();
        for x in w.iter_mut() {
            *x /= sum;
        }
        Test1Params {
            seed,
            i_max,
            shape,
            min_cost,
            max_cost,
            ratio_delay: [w[0], w[1], w[2]],
            ratio_lock: [w[3], w[4]],
            lock_prob: [rng.gen_range(0.0..=1.0), rng.gen_range(0.0..=1.0)],
        }
    }

    /// Nominal total work units (for scaling checks).
    pub fn approx_total_work(&self) -> u64 {
        self.i_max * (self.min_cost + self.max_cost) / 2
    }
}

/// Deterministic per-iteration coin flip.
fn coin(seed: u64, i: u64, which: u64, p: f64) -> bool {
    let mut x = seed ^ i.wrapping_mul(0x9E3779B97F4A7C15) ^ which.wrapping_mul(0xD1B54A32D192ED03);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    let u = ((x >> 11) as f64) / ((1u64 << 53) as f64);
    u < p
}

/// A Test1 program instance.
#[derive(Debug, Clone)]
pub struct Test1 {
    /// The instance parameters.
    pub params: Test1Params,
}

impl Test1 {
    /// Wrap parameters.
    pub fn new(params: Test1Params) -> Self {
        Test1 { params }
    }

    /// Emit the loop body (shared with Test2's nested loops). `lock_base`
    /// offsets the lock ids so nested instances use distinct locks.
    pub(crate) fn run_inner(&self, t: &mut Tracer, sec_name: &str, lock_base: u32) {
        let p = &self.params;
        t.par_sec_begin(sec_name);
        for i in 0..p.i_max {
            t.par_task_begin("it");
            let cost = compute_overhead(p.shape, i, p.i_max, p.min_cost, p.max_cost, p.seed);
            let part = |r: f64| -> u64 { (cost as f64 * r).round() as u64 };
            t.work(part(p.ratio_delay[0]));
            if p.ratio_lock[0] > 0.0 && coin(p.seed, i, 1, p.lock_prob[0]) {
                t.lock_begin(lock_base + 1);
                t.work(part(p.ratio_lock[0]));
                t.lock_end(lock_base + 1);
            }
            t.work(part(p.ratio_delay[1]));
            if p.ratio_lock[1] > 0.0 && coin(p.seed, i, 2, p.lock_prob[1]) {
                t.lock_begin(lock_base + 2);
                t.work(part(p.ratio_lock[1]));
                t.lock_end(lock_base + 2);
            }
            t.work(part(p.ratio_delay[2]));
            t.par_task_end();
        }
        t.par_sec_end(false);
    }
}

impl AnnotatedProgram for Test1 {
    fn name(&self) -> &str {
        "Test1"
    }

    fn run(&self, t: &mut Tracer) {
        self.run_inner(t, "test1", 0);
    }
}

impl Benchmark for Test1 {
    fn spec(&self) -> BenchSpec {
        BenchSpec {
            name: format!("Test1[{}]", self.params.seed),
            paradigm: Paradigm::OpenMp,
            schedule: Schedule::static1(),
            input_desc: format!("i_max={} {:?}", self.params.i_max, self.params.shape),
            footprint_bytes: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::NodeKind;
    use tracer::{profile, ProfileOptions};

    #[test]
    fn random_params_are_deterministic() {
        let a = Test1Params::random(7);
        let b = Test1Params::random(7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = Test1Params::random(8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn ratios_sum_to_one() {
        for seed in 0..50 {
            let p = Test1Params::random(seed);
            let sum: f64 = p.ratio_delay.iter().sum::<f64>() + p.ratio_lock.iter().sum::<f64>();
            assert!((sum - 1.0).abs() < 1e-9, "seed {seed}: sum {sum}");
        }
    }

    #[test]
    fn profiles_into_single_section_tree() {
        let prog = Test1::new(Test1Params::random(3));
        let r = profile(&prog, ProfileOptions::default());
        let secs = r.tree.top_level_sections();
        assert_eq!(secs.len(), 1);
        assert!(r.net_cycles > 0);
        // Task count matches trip count.
        let tasks = proftree::TaskSeq::new(&r.tree, secs[0]).count();
        assert_eq!(tasks as u64, prog.params.i_max);
    }

    #[test]
    fn lock_nodes_present_when_probable() {
        // Force locks on every iteration.
        let mut p = Test1Params::random(11);
        p.lock_prob = [1.0, 1.0];
        p.ratio_lock = [0.25, 0.25];
        p.ratio_delay = [0.2, 0.2, 0.1];
        let r = profile(&Test1::new(p), ProfileOptions::default());
        let locks = r
            .tree
            .ids()
            .filter(|&i| matches!(r.tree.node(i).kind, NodeKind::L { .. }))
            .count();
        assert!(locks > 0, "expected L nodes");
    }

    #[test]
    fn coin_is_deterministic_and_calibrated() {
        let hits = (0..10_000).filter(|&i| coin(42, i, 1, 0.3)).count();
        assert!((2_800..3_200).contains(&hits), "p=0.3 gave {hits}/10000");
        assert_eq!(coin(1, 2, 3, 0.5), coin(1, 2, 3, 0.5));
        assert!((0..10_000).all(|i| !coin(9, i, 1, 0.0)));
        assert!((0..10_000).all(|i| coin(9, i, 1, 1.0)));
    }
}
