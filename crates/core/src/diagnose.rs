//! Bottleneck diagnosis: *why* a section does not scale.
//!
//! Table III lists the FF as "ideal for: to see inherent scalability and
//! diagnose bottleneck" — this module turns that into an explicit API.
//! For each top-level region the diagnosis compares the FF prediction
//! against a set of idealised re-predictions (no memory burden, zero
//! runtime overhead, free locks, perfect balance) and attributes the
//! scalability loss to the factor whose removal buys the most time back.

use ffemu::{predict, FfOptions};
use machsim::Schedule;
use omp_rt::OmpOverheads;
use proftree::stats::span_of;
use proftree::{NodeKind, ProgramTree, WorkSummary};
use serde::{Deserialize, Serialize};

/// The dominant scalability limiter of one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bottleneck {
    /// The region scales ≈ linearly; nothing to fix.
    Scales,
    /// Memory-bandwidth saturation (burden factors > 1).
    Memory,
    /// Critical-section serialisation.
    Locks,
    /// Workload imbalance (tasks too unequal / too few for the cores).
    Imbalance,
    /// Parallel-runtime overhead (fork/join/dispatch dominate tiny work).
    Overhead,
    /// The region's own critical path (e.g. nested structure) limits it.
    CriticalPath,
}

/// Diagnosis of one top-level region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SectionDiagnosis {
    /// Region name.
    pub name: String,
    /// Serial cycles of the region.
    pub serial_cycles: u64,
    /// Share of the whole program.
    pub share: f64,
    /// Predicted speedup of this region alone at the probe thread count.
    pub speedup: f64,
    /// The dominant limiter.
    pub bottleneck: Bottleneck,
    /// Speedup if that limiter were removed (the "what if" headline).
    pub speedup_if_fixed: f64,
}

/// Whole-program diagnosis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnosis {
    /// Probe thread count.
    pub threads: u32,
    /// Whole-program predicted speedup.
    pub overall_speedup: f64,
    /// Amdahl ceiling from the top-level serial share alone.
    pub serial_fraction: f64,
    /// Per-region detail, largest share first.
    pub sections: Vec<SectionDiagnosis>,
}

impl Diagnosis {
    /// Render a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "diagnosis at {} threads: overall {:.2}x (serial fraction {:.1}%)",
            self.threads,
            self.overall_speedup,
            self.serial_fraction * 100.0
        )
        .unwrap();
        for s in &self.sections {
            writeln!(
                out,
                "  {:<20} {:>5.1}% of program, {:>5.2}x -> {:?} (fixing it: {:.2}x)",
                s.name,
                s.share * 100.0,
                s.speedup,
                s.bottleneck,
                s.speedup_if_fixed
            )
            .unwrap();
        }
        out
    }
}

/// Extract a single top-level region into its own tree (serial parts
/// dropped) so it can be predicted in isolation.
fn isolate(tree: &ProgramTree, sec: proftree::NodeId) -> ProgramTree {
    // Rebuild a tree containing only this region by cloning the arena and
    // re-pointing the root at the one child.
    let mut nodes: Vec<proftree::Node> = tree.ids().map(|i| tree.node(i).clone()).collect();
    nodes[0].children = proftree::ChildList::Plain(vec![sec]);
    nodes[0].length = tree.node(sec).length;
    ProgramTree::from_nodes(nodes)
}

fn probe(tree: &ProgramTree, opts: FfOptions) -> f64 {
    predict(tree, opts).speedup
}

/// Diagnose every top-level region of `tree` at `threads`.
pub fn diagnose(tree: &ProgramTree, threads: u32, schedule: Schedule) -> Diagnosis {
    let w = WorkSummary::gather(tree);
    let base_opts = FfOptions {
        cpus: threads,
        schedule,
        overheads: OmpOverheads::westmere_scaled(),
        use_burden: true,
        contended_lock_penalty: 2_000,
        model_pipelines: true,
        expand_runs: false,
    };
    let overall = predict(tree, base_opts);

    let mut sections = Vec::new();
    for sec in tree.top_level_sections() {
        let name = match &tree.node(sec).kind {
            NodeKind::Sec { name, .. } | NodeKind::Pipe { name, .. } => name.clone(),
            _ => continue,
        };
        let iso = isolate(tree, sec);
        let serial_cycles = tree.node(sec).length;
        let speedup = probe(&iso, base_opts);

        // Idealisation probes: remove one factor at a time.
        let no_memory = probe(
            &iso,
            FfOptions {
                use_burden: false,
                ..base_opts
            },
        );
        let no_overhead = probe(
            &iso,
            FfOptions {
                overheads: OmpOverheads::zero(),
                contended_lock_penalty: 0,
                ..base_opts
            },
        );
        // Free locks: strip L nodes into U nodes.
        let lockless = {
            let mut t = iso.clone();
            let ids: Vec<_> = t.ids().collect();
            for id in ids {
                if matches!(t.node(id).kind, NodeKind::L { .. }) {
                    t.node_mut(id).kind = NodeKind::U;
                }
            }
            probe(&t, base_opts)
        };
        // Perfect balance: the work/threads bound with burden applied.
        let burden = match &tree.node(sec).kind {
            NodeKind::Sec { burden, .. } | NodeKind::Pipe { burden, .. } => burden.factor(threads),
            _ => 1.0,
        };
        let balanced = threads as f64 / burden;
        // Critical-path ceiling of the region (unbounded processors).
        let span = span_of(tree, sec).max(1);
        let span_limit = serial_cycles as f64 / span as f64;

        let gains = [
            (Bottleneck::Memory, no_memory),
            (Bottleneck::Overhead, no_overhead),
            (Bottleneck::Locks, lockless),
            (Bottleneck::Imbalance, balanced),
        ];
        let near_linear = speedup >= 0.85 * threads as f64;
        let (bottleneck, speedup_if_fixed) = if near_linear {
            (Bottleneck::Scales, speedup)
        } else {
            let (mut best, mut best_gain) = (Bottleneck::Scales, speedup);
            for &(b, s) in &gains {
                if s > best_gain * 1.05 {
                    best = b;
                    best_gain = s;
                }
            }
            if best == Bottleneck::Scales {
                // No single knob helps: the structure itself (critical
                // path) is the limit.
                (Bottleneck::CriticalPath, span_limit.min(threads as f64))
            } else {
                (best, best_gain)
            }
        };

        sections.push(SectionDiagnosis {
            name,
            serial_cycles,
            share: serial_cycles as f64 / w.total.max(1) as f64,
            speedup,
            bottleneck,
            speedup_if_fixed,
        });
    }
    // Aggregate repeated executions of the same static region (e.g.
    // LU's hundreds of inner-loop instances): weight speedups by serial
    // share and keep the dominant bottleneck.
    let mut merged: Vec<SectionDiagnosis> = Vec::new();
    for s in sections {
        match merged
            .iter_mut()
            .find(|m| m.name == s.name && m.bottleneck == s.bottleneck)
        {
            Some(m) => {
                let w_old = m.serial_cycles as f64;
                let w_new = s.serial_cycles as f64;
                let w = (w_old + w_new).max(1.0);
                m.speedup = (m.speedup * w_old + s.speedup * w_new) / w;
                m.speedup_if_fixed = (m.speedup_if_fixed * w_old + s.speedup_if_fixed * w_new) / w;
                m.serial_cycles += s.serial_cycles;
                m.share += s.share;
            }
            None => merged.push(s),
        }
    }
    let mut sections = merged;
    sections.sort_by(|a, b| b.share.total_cmp(&a.share));

    Diagnosis {
        threads,
        overall_speedup: overall.speedup,
        serial_fraction: 1.0 - w.parallel_fraction(),
        sections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::{BurdenTable, TreeBuilder};

    fn probe_threads() -> u32 {
        8
    }

    fn diag_of(tree: &ProgramTree) -> Diagnosis {
        diagnose(tree, probe_threads(), Schedule::dynamic1())
    }

    #[test]
    fn balanced_loop_scales() {
        let mut b = TreeBuilder::new();
        b.begin_sec("good").unwrap();
        for _ in 0..64 {
            b.begin_task("t").unwrap();
            b.add_compute(100_000).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let d = diag_of(&b.finish().unwrap());
        assert_eq!(d.sections[0].bottleneck, Bottleneck::Scales);
        assert!(d.overall_speedup > 6.5);
    }

    #[test]
    fn lock_bound_loop_diagnosed() {
        let mut b = TreeBuilder::new();
        b.begin_sec("locky").unwrap();
        for _ in 0..32 {
            b.begin_task("t").unwrap();
            b.add_compute(20_000).unwrap();
            b.begin_lock(1).unwrap();
            b.add_compute(60_000).unwrap();
            b.end_lock(1).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let d = diag_of(&b.finish().unwrap());
        assert_eq!(d.sections[0].bottleneck, Bottleneck::Locks);
        assert!(d.sections[0].speedup_if_fixed > d.sections[0].speedup * 2.0);
    }

    #[test]
    fn memory_bound_loop_diagnosed() {
        let mut b = TreeBuilder::new();
        b.begin_sec("membound").unwrap();
        for _ in 0..64 {
            b.begin_task("t").unwrap();
            b.add_compute(100_000).unwrap();
            b.end_task().unwrap();
        }
        let sec = b.end_sec(false).unwrap();
        let mut tree = b.finish().unwrap();
        if let NodeKind::Sec { burden, .. } = &mut tree.node_mut(sec).kind {
            *burden = BurdenTable::from_entries(vec![(8, 2.2)]);
        }
        let d = diag_of(&tree);
        assert_eq!(d.sections[0].bottleneck, Bottleneck::Memory);
    }

    #[test]
    fn overhead_bound_loop_diagnosed() {
        // Thousands of microscopic tasks: runtime overhead dominates.
        let mut b = TreeBuilder::new();
        b.begin_sec("tiny").unwrap();
        for _ in 0..2_000 {
            b.begin_task("t").unwrap();
            b.add_compute(40).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let d = diag_of(&b.finish().unwrap());
        assert_eq!(d.sections[0].bottleneck, Bottleneck::Overhead);
    }

    #[test]
    fn imbalanced_loop_diagnosed() {
        // One giant task among dwarfs, static block scheduling.
        let mut b = TreeBuilder::new();
        b.begin_sec("skewed").unwrap();
        b.begin_task("giant").unwrap();
        b.add_compute(5_000_000).unwrap();
        b.end_task().unwrap();
        for _ in 0..7 {
            b.begin_task("dwarf").unwrap();
            b.add_compute(50_000).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        let d = diagnose(&tree, 8, Schedule::static_block());
        // A single dominant task cannot be balanced by scheduling — the
        // honest verdict is the critical path (the giant task itself),
        // since the "perfect balance" probe would claim linear speedup
        // that no schedule can deliver… the diagnosis reports whichever
        // idealisation actually helps; assert it is *not* misattributed
        // to locks or memory.
        assert!(matches!(
            d.sections[0].bottleneck,
            Bottleneck::Imbalance | Bottleneck::CriticalPath
        ));
        assert!(d.sections[0].speedup < 2.0);
    }

    #[test]
    fn pipeline_region_diagnosed() {
        // A bottleneck-heavy pipeline: stage 1 dominates, so the region
        // is limited by its own structure (critical path), not by locks
        // or memory.
        let mut b = TreeBuilder::new();
        b.begin_pipe("stream").unwrap();
        for _ in 0..24 {
            b.begin_task("item").unwrap();
            for (s, len) in [(0u32, 10_000u64), (1, 60_000), (2, 10_000)] {
                b.begin_stage(s).unwrap();
                b.add_compute(len).unwrap();
                b.end_stage(s).unwrap();
            }
            b.end_task().unwrap();
        }
        b.end_pipe().unwrap();
        let d = diag_of(&b.finish().unwrap());
        assert_eq!(d.sections.len(), 1);
        assert!(
            d.sections[0].speedup < 2.0,
            "bottleneck law caps at 80/60 ≈ 1.33, got {:.2}",
            d.sections[0].speedup
        );
        assert!(matches!(
            d.sections[0].bottleneck,
            Bottleneck::CriticalPath | Bottleneck::Imbalance
        ));
    }

    #[test]
    fn render_is_readable() {
        let mut b = TreeBuilder::new();
        b.add_compute(1_000).unwrap();
        b.begin_sec("s").unwrap();
        b.begin_task("t").unwrap();
        b.add_compute(10_000).unwrap();
        b.end_task().unwrap();
        b.end_sec(false).unwrap();
        let d = diag_of(&b.finish().unwrap());
        let text = d.render();
        assert!(text.contains("diagnosis at 8 threads"));
        assert!(text.contains('s'));
    }
}
