#![warn(missing_docs)]

//! # Parallel Prophet
//!
//! Predict the potential parallel speedup of a *serial* program before
//! parallelising it — a full reproduction of Kim, Kumar, Kim & Brett,
//! *"Predicting Potential Speedup of Serial Code via Lightweight Profiling
//! and Emulations with Memory Performance Model"* (IPDPS 2012).
//!
//! The workflow is the paper's Fig. 3:
//!
//! 1. **Annotate** the serial program with the Table II annotations
//!    (`PAR_SEC_*`, `PAR_TASK_*`, `LOCK_*` — methods on
//!    [`tracer::Tracer`]) describing what *would* run in parallel.
//! 2. **Profile** it once: interval profiling builds a compressed program
//!    tree; hardware-counter profiling records each top-level section's
//!    memory behaviour.
//! 3. **Model memory**: the calibrated Ψ/Φ formulas convert each
//!    section's counters into per-thread-count *burden factors*.
//! 4. **Emulate**: the fast-forwarding emulator (analytical, any CPU
//!    count) or the synthesizer (runs generated code on the machine —
//!    here a deterministic multicore simulator) produce speedup
//!    predictions per schedule, paradigm, and thread count.
//!
//! ```
//! use prophet_core::{Emulator, PredictOptions, Prophet};
//! use machsim::{Paradigm, Schedule};
//!
//! // An annotated serial program: a loop with unequal iterations.
//! struct MyLoop;
//! impl tracer::AnnotatedProgram for MyLoop {
//!     fn name(&self) -> &str { "my_loop" }
//!     fn run(&self, t: &mut tracer::Tracer) {
//!         t.par_sec_begin("loop");
//!         for i in 0..16u64 {
//!             t.par_task_begin("iter");
//!             t.work(10_000 + i * 1_000);
//!             t.par_task_end();
//!         }
//!         t.par_sec_end(false);
//!     }
//! }
//!
//! let mut prophet = Prophet::new();
//! let profiled = prophet.profile(&MyLoop);
//! let pred = prophet.predict(&profiled, &PredictOptions {
//!     threads: 4,
//!     schedule: Schedule::dynamic1(),
//!     ..PredictOptions::default()
//! }).unwrap();
//! assert!(pred.speedup > 3.0 && pred.speedup <= 4.0);
//! ```

pub mod codec;
pub mod diagnose;
pub mod error;
pub mod report;

use cachesim::HierarchyConfig;
use machsim::{MachineConfig, Paradigm, RunError, Schedule};
use memmodel::{calibrate, CacheTrend, CalibrationOptions, MemCalibration};
use proftree::ProgramTree;
use serde::{Deserialize, Serialize};
use tracer::{AnnotatedProgram, ProfileOptions, ProfileResult};

pub use diagnose::{diagnose, Bottleneck, Diagnosis, SectionDiagnosis};
pub use error::ProphetError;
pub use report::{PredictionRow, SpeedupReport};

// Re-export the subsystem crates so downstream users need only one
// dependency.
pub use baselines;
pub use cachesim;
pub use ffemu;
pub use machsim;
pub use memmodel;
pub use omp_rt;
pub use proftree;
pub use synthemu;
pub use tracer;

/// Which emulator produces the prediction (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Emulator {
    /// Fast-forwarding: analytical, arbitrary CPU counts, weaker on
    /// nested/recursive parallelism.
    FastForward,
    /// Program-synthesis: measures generated code on the machine; most
    /// accurate, limited to the machine's real core count.
    Synthesizer,
}

/// Options for one prediction.
#[derive(Debug, Clone, Copy)]
pub struct PredictOptions {
    /// Thread count to predict.
    pub threads: u32,
    /// Threading paradigm.
    pub paradigm: Paradigm,
    /// OpenMP schedule.
    pub schedule: Schedule,
    /// Emulator choice.
    pub emulator: Emulator,
    /// Apply the memory performance model's burden factors.
    pub memory_model: bool,
}

impl Default for PredictOptions {
    fn default() -> Self {
        PredictOptions {
            threads: 2,
            paradigm: Paradigm::OpenMp,
            schedule: Schedule::static_block(),
            emulator: Emulator::Synthesizer,
            memory_model: true,
        }
    }
}

/// A profiled program: the tree (with burden factors attached) plus the
/// profiling record.
///
/// Serializable end to end so profiles can be persisted by the
/// `prophet-store` on-disk store and re-loaded byte-identically: every
/// numeric field round-trips exactly through the JSON data model
/// (integers stay integers; floats print in shortest-roundtrip form).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profiled {
    /// Program name.
    pub name: String,
    /// The program tree, burden factors included.
    pub tree: ProgramTree,
    /// Raw profiling result (overheads, counters, compression stats).
    pub profile: ProfileResult,
}

/// One prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted speedup.
    pub speedup: f64,
    /// Predicted parallel time, cycles.
    pub predicted_cycles: u64,
    /// Serial time, cycles.
    pub serial_cycles: u64,
    /// Thread count predicted for.
    pub threads: u32,
    /// Emulator used.
    pub emulator: Emulator,
    /// Schedule name (paper notation, e.g. `"static-1"`).
    pub schedule: String,
    /// Paradigm name.
    pub paradigm: String,
}

/// The Parallel Prophet tool: configuration + cached machine calibration.
///
/// Every prediction-path method takes `&self`: a `Prophet` (typically
/// behind an [`std::sync::Arc`]) can profile and predict from many
/// threads at once — grid points of a sweep run concurrently against one
/// shared instance. The one lazily-computed piece of state, the Ψ/Φ
/// calibration, memoises through a [`std::sync::OnceLock`], so the §V-D
/// microbenchmark runs at most once per instance no matter how many
/// threads race to first use.
pub struct Prophet {
    machine: MachineConfig,
    hierarchy: HierarchyConfig,
    profile_options: ProfileOptions,
    burden_thread_counts: Vec<u32>,
    calibration: std::sync::OnceLock<MemCalibration>,
}

// The prediction path is documented re-entrant; make the contract a
// compile-time fact so a non-Send field can't regress it silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Prophet>();
    assert_send_sync::<Profiled>();
    assert_send_sync::<Prediction>();
};

impl Default for Prophet {
    fn default() -> Self {
        Self::new()
    }
}

/// 64-bit FNV-1a hash — the stack's stable content fingerprint.
///
/// Chosen over a cryptographic hash because fingerprints here only guard
/// against *accidental* mismatches (a machine config edit, a stale store
/// directory), never adversaries, and FNV-1a is dependency-free and
/// byte-order independent. The constants are the canonical FNV-1a 64
/// offset basis and prime; the function must never change, as persisted
/// store keys embed its output.
pub fn fingerprint64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Step-wise construction of a [`Prophet`].
///
/// Replaces the old mutate-after-`new` pattern
/// (`set_profile_options`/`set_calibration`): every knob is set before
/// the instance exists, so a fully-built `Prophet` can go straight
/// behind an [`Arc`](std::sync::Arc) without a mutable warm-up phase.
///
/// ```
/// use prophet_core::Prophet;
/// use machsim::MachineConfig;
/// use cachesim::HierarchyConfig;
///
/// let prophet = Prophet::builder()
///     .machine(MachineConfig::westmere_scaled(), HierarchyConfig::westmere_scaled())
///     .build();
/// assert_eq!(prophet.machine().cores, 12);
/// ```
#[derive(Default)]
pub struct ProphetBuilder {
    machine: Option<MachineConfig>,
    hierarchy: Option<HierarchyConfig>,
    profile_options: Option<ProfileOptions>,
    calibration: Option<MemCalibration>,
    burden_thread_counts: Option<Vec<u32>>,
}

impl ProphetBuilder {
    /// A builder with every knob at its default (scaled Westmere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Target machine and cache hierarchy.
    pub fn machine(mut self, machine: MachineConfig, hierarchy: HierarchyConfig) -> Self {
        self.machine = Some(machine);
        self.hierarchy = Some(hierarchy);
        self
    }

    /// Profiling options (annotation overhead, compression…). The
    /// machine/hierarchy fields inside are overwritten at
    /// [`build`](ProphetBuilder::build) time to stay consistent with
    /// [`machine`](Self::machine).
    pub fn profile_options(mut self, opts: ProfileOptions) -> Self {
        self.profile_options = Some(opts);
        self
    }

    /// Inject a pre-computed Ψ/Φ calibration (e.g. loaded from JSON)
    /// instead of running the microbenchmark on first use.
    pub fn calibration(mut self, cal: MemCalibration) -> Self {
        self.calibration = Some(cal);
        self
    }

    /// Thread counts the memory model computes burden factors for.
    pub fn burden_thread_counts(mut self, counts: Vec<u32>) -> Self {
        self.burden_thread_counts = Some(counts);
        self
    }

    /// Build the prophet.
    pub fn build(self) -> Prophet {
        let machine = self.machine.unwrap_or_else(MachineConfig::westmere_scaled);
        let hierarchy = self
            .hierarchy
            .unwrap_or_else(HierarchyConfig::westmere_scaled);
        let mut profile_options = self.profile_options.unwrap_or_else(|| ProfileOptions {
            machine,
            hierarchy,
            ..ProfileOptions::default()
        });
        profile_options.machine = machine;
        profile_options.hierarchy = hierarchy;
        let calibration = std::sync::OnceLock::new();
        if let Some(cal) = self.calibration {
            let _ = calibration.set(cal);
        }
        Prophet {
            machine,
            hierarchy,
            profile_options,
            burden_thread_counts: self
                .burden_thread_counts
                .unwrap_or_else(|| vec![2, 4, 6, 8, 10, 12]),
            calibration,
        }
    }
}

impl Prophet {
    /// A prophet for the default (scaled Westmere) machine.
    pub fn new() -> Self {
        ProphetBuilder::new().build()
    }

    /// Start building a configured prophet.
    pub fn builder() -> ProphetBuilder {
        ProphetBuilder::new()
    }

    /// A prophet for a custom machine/cache configuration.
    pub fn with_machine(machine: MachineConfig, hierarchy: HierarchyConfig) -> Self {
        ProphetBuilder::new().machine(machine, hierarchy).build()
    }

    /// The machine configuration predictions target.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The cache hierarchy profiled against.
    pub fn hierarchy(&self) -> &HierarchyConfig {
        &self.hierarchy
    }

    /// Override profiling options (annotation overhead, compression…).
    #[deprecated(note = "construct via Prophet::builder().profile_options(..) instead")]
    pub fn set_profile_options(&mut self, opts: ProfileOptions) {
        self.profile_options = opts;
        self.profile_options.machine = self.machine;
        self.profile_options.hierarchy = self.hierarchy;
    }

    /// Inject a pre-computed calibration (e.g. loaded from JSON) instead
    /// of running the microbenchmark. Replaces any memoised calibration.
    #[deprecated(note = "construct via Prophet::builder().calibration(..) instead")]
    pub fn set_calibration(&mut self, cal: MemCalibration) {
        self.calibration = std::sync::OnceLock::new();
        let _ = self.calibration.set(cal);
    }

    /// The Ψ/Φ calibration of this machine, computing it on first use
    /// (runs the §V-D microbenchmark on the simulated machine). Memoised:
    /// concurrent first callers block until the one computing it is done.
    pub fn calibration(&self) -> &MemCalibration {
        self.calibration
            .get_or_init(|| calibrate(self.machine, &CalibrationOptions::default()))
    }

    /// Fingerprint of the active Ψ/Φ calibration (computing it first if
    /// needed). Two prophets with byte-identical calibrations — and hence
    /// identical burden factors — share a fingerprint; a persisted profile
    /// keyed on it can only ever be replayed against the calibration that
    /// produced it.
    pub fn calibration_fingerprint(&self) -> u64 {
        let json =
            serde_json::to_string(self.calibration()).expect("calibration serializes infallibly");
        fingerprint64(json.as_bytes())
    }

    /// Fingerprint of everything besides the calibration that shapes a
    /// [`Profiled`]: machine, hierarchy, profiling overheads, compression
    /// settings, and the burden thread counts attached to the tree. Any
    /// change to these must invalidate persisted profiles.
    pub fn profile_options_fingerprint(&self) -> u64 {
        let o = &self.profile_options;
        let canonical = format!(
            "machine={};hierarchy={};ann={};ctr={};compress={};tol={:?};minch={};burden={:?}",
            serde_json::to_string(&o.machine).expect("machine serializes infallibly"),
            serde_json::to_string(&o.hierarchy).expect("hierarchy serializes infallibly"),
            o.annotation_overhead,
            o.counter_read_overhead,
            o.compress,
            o.compress_options.tolerance,
            o.compress_options.min_children,
            self.burden_thread_counts,
        );
        fingerprint64(canonical.as_bytes())
    }

    /// Profile an annotated program and attach burden factors to every
    /// top-level section (steps 2-3 of the workflow).
    pub fn profile(&self, program: &dyn AnnotatedProgram) -> Profiled {
        let result = tracer::profile(program, self.profile_options);
        let mut tree = result.tree.clone();
        let cal = self.calibration();
        memmodel::apply_burden(&mut tree, cal, &self.burden_thread_counts);
        Profiled {
            name: program.name().to_string(),
            tree,
            profile: result,
        }
    }

    /// Like [`Prophet::profile`], but apply a cache-trend hypothesis
    /// (Table IV rows 1/3 — the paper's future-work extension) when
    /// computing burden factors. `CacheTrend::Shrinks` can produce
    /// sub-unit (super-linear bonus) factors.
    pub fn profile_with_trend(
        &self,
        program: &dyn AnnotatedProgram,
        trend: CacheTrend,
    ) -> Profiled {
        let result = tracer::profile(program, self.profile_options);
        let mut tree = result.tree.clone();
        let cal = self.calibration();
        let llc = self.hierarchy.llc.capacity_bytes;
        memmodel::apply_burden_with_trend(&mut tree, cal, &self.burden_thread_counts, trend, llc);
        Profiled {
            name: program.name().to_string(),
            tree,
            profile: result,
        }
    }

    /// Predict the speedup of a profiled program (step 4).
    pub fn predict(
        &self,
        profiled: &Profiled,
        opts: &PredictOptions,
    ) -> Result<Prediction, RunError> {
        let (speedup, predicted, serial) = match opts.emulator {
            Emulator::FastForward => {
                let p = ffemu::predict(
                    &profiled.tree,
                    ffemu::FfOptions {
                        cpus: opts.threads,
                        schedule: opts.schedule,
                        overheads: omp_rt::OmpOverheads::westmere_scaled(),
                        use_burden: opts.memory_model,
                        contended_lock_penalty: self.machine.context_switch_cycles,
                        model_pipelines: true,
                        expand_runs: false,
                    },
                );
                (p.speedup, p.predicted_cycles, p.serial_cycles)
            }
            Emulator::Synthesizer => {
                let mut so = synthemu::SynthOptions::new(opts.threads, opts.paradigm);
                so.machine = self.machine;
                so.schedule = opts.schedule;
                so.use_burden = opts.memory_model;
                let p = synthemu::predict(&profiled.tree, &so)?;
                (p.speedup, p.predicted_cycles, p.serial_cycles)
            }
        };
        Ok(Prediction {
            speedup,
            predicted_cycles: predicted,
            serial_cycles: serial,
            threads: opts.threads,
            emulator: opts.emulator,
            schedule: opts.schedule.name(),
            paradigm: opts.paradigm.name().to_string(),
        })
    }

    /// Predict a whole speedup curve; thread counts beyond the machine's
    /// cores are skipped for the synthesizer (it measures the machine) but
    /// kept for the FF (it targets an abstract machine).
    pub fn speedup_curve(
        &self,
        profiled: &Profiled,
        base: &PredictOptions,
        thread_counts: &[u32],
    ) -> Result<Vec<Prediction>, RunError> {
        let mut out = Vec::new();
        for &t in thread_counts {
            if base.emulator == Emulator::Synthesizer && t > self.machine.cores {
                continue;
            }
            let mut o = *base;
            o.threads = t;
            out.push(self.predict(profiled, &o)?);
        }
        Ok(out)
    }
}

/// The outcome of [`Prophet::recommend`]: every explored configuration
/// and the fastest one.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Recommendation {
    /// The winning configuration.
    pub best: Prediction,
    /// All explored predictions, fastest first.
    pub all: Vec<Prediction>,
}

impl Prophet {
    /// Explore a grid of configurations (the paper's closing step:
    /// "speedups are reported against different parallelization
    /// parameters such as scheduling policies, threading models, and CPU
    /// numbers").
    pub fn explore(
        &self,
        profiled: &Profiled,
        thread_counts: &[u32],
        schedules: &[Schedule],
        paradigms: &[Paradigm],
        emulator: Emulator,
    ) -> Result<Vec<Prediction>, RunError> {
        let mut out = Vec::new();
        for &threads in thread_counts {
            if emulator == Emulator::Synthesizer && threads > self.machine.cores {
                continue;
            }
            for &schedule in schedules {
                for &paradigm in paradigms {
                    out.push(self.predict(
                        profiled,
                        &PredictOptions {
                            threads,
                            paradigm,
                            schedule,
                            emulator,
                            memory_model: true,
                        },
                    )?);
                }
            }
        }
        Ok(out)
    }

    /// Recommend the best configuration at the machine's full core count:
    /// sweeps the three paper schedules under OpenMP plus the Cilk
    /// work-stealing runtime, with the synthesizer (most accurate).
    pub fn recommend(&self, profiled: &Profiled) -> Result<Recommendation, RunError> {
        let mut all = self.explore(
            profiled,
            &[self.machine.cores],
            &[
                Schedule::static1(),
                Schedule::static_block(),
                Schedule::dynamic1(),
            ],
            &[Paradigm::OpenMp],
            Emulator::Synthesizer,
        )?;
        all.extend(self.explore(
            profiled,
            &[self.machine.cores],
            &[Schedule::static_block()],
            &[Paradigm::CilkPlus, Paradigm::OmpTask],
            Emulator::Synthesizer,
        )?);
        all.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
        let best = all.first().cloned().expect("explored at least one config");
        Ok(Recommendation { best, all })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Balanced;
    impl AnnotatedProgram for Balanced {
        fn name(&self) -> &str {
            "balanced"
        }
        fn run(&self, t: &mut tracer::Tracer) {
            t.par_sec_begin("loop");
            for _ in 0..24 {
                t.par_task_begin("it");
                t.work(20_000);
                t.par_task_end();
            }
            t.par_sec_end(false);
        }
    }

    fn quick_prophet() -> Prophet {
        // Keep test runtime small: light calibration.
        Prophet::builder()
            .calibration(memmodel::calibrate(
                MachineConfig::westmere_scaled(),
                &CalibrationOptions {
                    thread_counts: vec![2, 4, 8, 12],
                    intensity_steps: 6,
                    packet_cycles: 200_000,
                },
            ))
            .build()
    }

    #[test]
    fn end_to_end_balanced_loop() {
        let prophet = quick_prophet();
        let profiled = prophet.profile(&Balanced);
        for emulator in [Emulator::FastForward, Emulator::Synthesizer] {
            let pred = prophet
                .predict(
                    &profiled,
                    &PredictOptions {
                        threads: 4,
                        schedule: Schedule::static1(),
                        emulator,
                        ..Default::default()
                    },
                )
                .unwrap();
            assert!(
                pred.speedup > 3.3 && pred.speedup <= 4.01,
                "{emulator:?} speedup {}",
                pred.speedup
            );
        }
    }

    #[test]
    fn ff_predicts_beyond_machine_cores_synth_does_not() {
        let prophet = quick_prophet();
        let profiled = prophet.profile(&Balanced);
        let base = PredictOptions {
            emulator: Emulator::FastForward,
            schedule: Schedule::static1(),
            ..Default::default()
        };
        let curve = prophet
            .speedup_curve(&profiled, &base, &[2, 12, 24])
            .unwrap();
        assert_eq!(curve.len(), 3);

        let base = PredictOptions {
            emulator: Emulator::Synthesizer,
            ..base
        };
        let curve = prophet
            .speedup_curve(&profiled, &base, &[2, 12, 24])
            .unwrap();
        assert_eq!(curve.len(), 2, "24 > 12 cores must be skipped");
    }

    #[test]
    fn explore_covers_grid_and_recommend_picks_best() {
        let prophet = quick_prophet();
        let profiled = prophet.profile(&Balanced);
        let preds = prophet
            .explore(
                &profiled,
                &[2, 4],
                &[Schedule::static1(), Schedule::dynamic1()],
                &[Paradigm::OpenMp],
                Emulator::FastForward,
            )
            .unwrap();
        assert_eq!(preds.len(), 4);
        let rec = prophet.recommend(&profiled).unwrap();
        assert_eq!(rec.all.len(), 5); // 3 OpenMP schedules + Cilk + OmpTask
        assert!(rec.all.windows(2).all(|w| w[0].speedup >= w[1].speedup));
        assert!((rec.best.speedup - rec.all[0].speedup).abs() < 1e-12);
        assert!(rec.best.speedup > 1.0);
    }

    #[test]
    fn profile_with_trend_changes_burden_only() {
        use memmodel::CacheTrend;
        let prophet = quick_prophet();
        let base = prophet.profile(&Balanced);
        let trended = prophet.profile_with_trend(
            &Balanced,
            CacheTrend::Shrinks {
                footprint_bytes: 1 << 24,
            },
        );
        // Balanced is compute-bound: trends must not invent burden.
        assert_eq!(base.tree.total_length(), trended.tree.total_length());
        for (a, b) in base
            .tree
            .top_level_sections()
            .into_iter()
            .zip(trended.tree.top_level_sections())
        {
            assert_eq!(base.tree.node(a).length, trended.tree.node(b).length);
        }
    }

    #[test]
    fn builder_matches_mutated_construction_and_fingerprints_discriminate() {
        let built = quick_prophet();
        // Fingerprints are deterministic for equal configuration…
        assert_eq!(
            built.profile_options_fingerprint(),
            quick_prophet().profile_options_fingerprint()
        );
        assert_eq!(
            built.calibration_fingerprint(),
            quick_prophet().calibration_fingerprint()
        );
        // …and move when anything that shapes a profile moves.
        let other_counts = Prophet::builder().burden_thread_counts(vec![2, 4]).build();
        assert_ne!(
            built.profile_options_fingerprint(),
            other_counts.profile_options_fingerprint()
        );
        let full_cal = Prophet::new();
        assert_ne!(
            built.calibration_fingerprint(),
            full_cal.calibration_fingerprint(),
            "light and full calibrations must not collide"
        );
    }

    #[test]
    fn profiled_round_trips_through_json_byte_identically() {
        let prophet = quick_prophet();
        let profiled = prophet.profile(&Balanced);
        let js = serde_json::to_string(&profiled).unwrap();
        let back: Profiled = serde_json::from_str(&js).unwrap();
        let js2 = serde_json::to_string(&back).unwrap();
        assert_eq!(js, js2, "persisted profile must re-serialize identically");
        // And the reloaded profile predicts identically.
        let a = prophet
            .predict(&profiled, &PredictOptions::default())
            .unwrap();
        let b = prophet.predict(&back, &PredictOptions::default()).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Canonical FNV-1a 64 test vectors.
        assert_eq!(fingerprint64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn prediction_serializes() {
        let prophet = quick_prophet();
        let profiled = prophet.profile(&Balanced);
        let pred = prophet
            .predict(&profiled, &PredictOptions::default())
            .unwrap();
        let js = serde_json::to_string(&pred).unwrap();
        assert!(js.contains("speedup"));
    }
}
