//! Tabular speedup reports: the "estimates" Parallel Prophet finally
//! shows the programmer (paper Fig. 3's last stage), with plain-text and
//! JSON rendering used by the experiment harness.

use serde::{Deserialize, Serialize};

/// One row of a speedup report: a thread count and the speedups of each
/// labelled series at that count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionRow {
    /// Thread/CPU count.
    pub threads: u32,
    /// Speedup per series, aligned with [`SpeedupReport::series`].
    pub speedups: Vec<Option<f64>>,
}

/// A speedup table: named series over thread counts, e.g.
/// `Real / Pred / PredM / Suit` over 2-12 cores (the Fig. 12 panels).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpeedupReport {
    /// Report title (benchmark + input).
    pub title: String,
    /// Series labels.
    pub series: Vec<String>,
    /// Rows in increasing thread order.
    pub rows: Vec<PredictionRow>,
}

impl SpeedupReport {
    /// New empty report.
    pub fn new(title: impl Into<String>, series: Vec<String>) -> Self {
        SpeedupReport {
            title: title.into(),
            series,
            rows: Vec::new(),
        }
    }

    /// Append a row; `speedups` must align with the series labels.
    pub fn push_row(&mut self, threads: u32, speedups: Vec<Option<f64>>) {
        debug_assert_eq!(speedups.len(), self.series.len());
        self.rows.push(PredictionRow { threads, speedups });
    }

    /// Look up a value by series label and thread count.
    pub fn get(&self, series: &str, threads: u32) -> Option<f64> {
        let col = self.series.iter().position(|s| s == series)?;
        self.rows.iter().find(|r| r.threads == threads)?.speedups[col]
    }

    /// Mean relative error of series `pred` against series `truth`,
    /// over rows where both exist (the paper's "error ratio").
    pub fn mean_relative_error(&self, pred: &str, truth: &str) -> Option<f64> {
        let pc = self.series.iter().position(|s| s == pred)?;
        let tc = self.series.iter().position(|s| s == truth)?;
        let mut sum = 0.0;
        let mut n = 0u32;
        for row in &self.rows {
            if let (Some(p), Some(t)) = (row.speedups[pc], row.speedups[tc]) {
                if t > 0.0 {
                    sum += (p - t).abs() / t;
                    n += 1;
                }
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Render as an aligned plain-text table. Column widths grow with
    /// the series labels so long names stay readable.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let width = self
            .series
            .iter()
            .map(|s| s.len() + 2)
            .max()
            .unwrap_or(10)
            .max(10);
        let mut out = String::new();
        writeln!(out, "== {} ==", self.title).unwrap();
        write!(out, "{:>8}", "threads").unwrap();
        for s in &self.series {
            write!(out, "{s:>width$}").unwrap();
        }
        out.push('\n');
        for row in &self.rows {
            write!(out, "{:>8}", row.threads).unwrap();
            for v in &row.speedups {
                match v {
                    Some(x) => write!(out, "{x:>width$.2}").unwrap(),
                    None => write!(out, "{:>width$}", "-").unwrap(),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialise to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpeedupReport {
        let mut r = SpeedupReport::new(
            "NPB-FT: B/850MB",
            vec!["Real".into(), "Pred".into(), "PredM".into()],
        );
        r.push_row(2, vec![Some(1.9), Some(2.0), Some(1.85)]);
        r.push_row(4, vec![Some(3.2), Some(3.9), Some(3.1)]);
        r.push_row(12, vec![Some(4.0), Some(11.0), None]);
        r
    }

    #[test]
    fn get_by_label() {
        let r = sample();
        assert_eq!(r.get("Pred", 4), Some(3.9));
        assert_eq!(r.get("PredM", 12), None);
        assert_eq!(r.get("Nope", 2), None);
    }

    #[test]
    fn mean_relative_error_matches_hand_calc() {
        let r = sample();
        let e = r.mean_relative_error("PredM", "Real").unwrap();
        let expect = ((0.05 / 1.9) + (0.1 / 3.2)) / 2.0;
        assert!((e - expect).abs() < 1e-12);
        // Pred vs Real includes the wildly-off 12-core row.
        let e2 = r.mean_relative_error("Pred", "Real").unwrap();
        assert!(e2 > 0.5);
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let text = sample().render();
        assert!(text.contains("NPB-FT"));
        assert!(text.contains("Real"));
        assert!(text.lines().count() == 5);
        assert!(text.contains("11.00"));
        assert!(text.contains("-"));
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let back: SpeedupReport = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back.series, r.series);
        assert_eq!(back.rows.len(), 3);
    }
}
