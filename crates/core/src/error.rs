//! The unified error type of the Parallel Prophet stack.
//!
//! Before this module existed every layer invented its own failure
//! shape: `machsim` returned [`RunError`], the serve daemon passed raw
//! strings around and hard-coded HTTP status numbers at each call site,
//! and store I/O surfaced as `std::io::Error`. [`ProphetError`] unifies
//! them behind one enum whose variants map **1:1** onto
//!
//! * a stable machine-readable [`code`](ProphetError::code) (wire
//!   contract: error bodies carry it verbatim),
//! * an HTTP status ([`http_status`](ProphetError::http_status)) used by
//!   the `/v1/` API, and
//! * a CLI exit code ([`exit_code`](ProphetError::exit_code)).
//!
//! The mapping is part of the v1 API's compatibility surface: codes may
//! gain variants but existing ones never change meaning.

use machsim::RunError;
use serde::{Deserialize, Serialize};

/// Every failure the prediction stack can surface to a caller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ProphetError {
    /// The request could not be parsed at the transport level (bad JSON,
    /// non-UTF-8 body). HTTP 400.
    InvalidRequest(String),
    /// The request parsed but is semantically unusable: unknown
    /// workload, bad schedule spelling, empty or oversized grid.
    /// HTTP 422.
    Unprocessable(String),
    /// Admission control shed the request (queue full). HTTP 429;
    /// retryable by contract.
    Overloaded,
    /// The service cannot take work right now (draining for shutdown, or
    /// a shard proxy could not reach the owning daemon). HTTP 503.
    Unavailable(String),
    /// The request's deadline elapsed before a worker delivered.
    /// HTTP 504.
    DeadlineExceeded,
    /// The emulation itself failed (deadlock, runaway thread body).
    /// HTTP 500.
    Run(RunError),
    /// The persistent profile store failed at the I/O layer. HTTP 500.
    Store(String),
}

impl ProphetError {
    /// Stable machine-readable code. Part of the v1 wire contract:
    /// clients branch on this, never on the human-readable message.
    pub fn code(&self) -> &'static str {
        match self {
            ProphetError::InvalidRequest(_) => "invalid_request",
            ProphetError::Unprocessable(_) => "unprocessable",
            ProphetError::Overloaded => "overloaded",
            ProphetError::Unavailable(_) => "unavailable",
            ProphetError::DeadlineExceeded => "deadline_exceeded",
            ProphetError::Run(_) => "run_failed",
            ProphetError::Store(_) => "store_io",
        }
    }

    /// The HTTP status the v1 API answers this error with.
    pub fn http_status(&self) -> u16 {
        match self {
            ProphetError::InvalidRequest(_) => 400,
            ProphetError::Unprocessable(_) => 422,
            ProphetError::Overloaded => 429,
            ProphetError::Unavailable(_) => 503,
            ProphetError::DeadlineExceeded => 504,
            ProphetError::Run(_) | ProphetError::Store(_) => 500,
        }
    }

    /// The process exit code CLI verbs use for this error. `2` matches
    /// the CLI's long-standing usage-error convention; the rest are
    /// distinct so scripts can branch without parsing stderr.
    pub fn exit_code(&self) -> i32 {
        match self {
            ProphetError::InvalidRequest(_) => 2,
            ProphetError::Unprocessable(_) => 3,
            ProphetError::Overloaded => 4,
            ProphetError::Unavailable(_) => 5,
            ProphetError::DeadlineExceeded => 6,
            ProphetError::Run(_) => 7,
            ProphetError::Store(_) => 8,
        }
    }

    /// True for errors a client may retry verbatim after backing off.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ProphetError::Overloaded
                | ProphetError::Unavailable(_)
                | ProphetError::DeadlineExceeded
        )
    }
}

impl std::fmt::Display for ProphetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProphetError::InvalidRequest(m) => write!(f, "invalid request: {m}"),
            ProphetError::Unprocessable(m) => write!(f, "unprocessable request: {m}"),
            ProphetError::Overloaded => write!(f, "overloaded: admission queue full"),
            ProphetError::Unavailable(m) => write!(f, "unavailable: {m}"),
            ProphetError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ProphetError::Run(e) => write!(f, "emulation failed: {e}"),
            ProphetError::Store(m) => write!(f, "profile store: {m}"),
        }
    }
}

impl std::error::Error for ProphetError {}

impl From<RunError> for ProphetError {
    fn from(e: RunError) -> Self {
        ProphetError::Run(e)
    }
}

impl From<std::io::Error> for ProphetError {
    fn from(e: std::io::Error) -> Self {
        ProphetError::Store(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all() -> Vec<ProphetError> {
        vec![
            ProphetError::InvalidRequest("x".into()),
            ProphetError::Unprocessable("x".into()),
            ProphetError::Overloaded,
            ProphetError::Unavailable("drain".into()),
            ProphetError::DeadlineExceeded,
            ProphetError::Run(RunError::RunawayThread {
                thread: machsim::ThreadId(0),
            }),
            ProphetError::Store("disk full".into()),
        ]
    }

    #[test]
    fn codes_statuses_and_exits_are_distinct_per_variant() {
        let errs = all();
        let codes: Vec<&str> = errs.iter().map(|e| e.code()).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), errs.len(), "codes must be unique: {codes:?}");
        let mut exits: Vec<i32> = errs.iter().map(|e| e.exit_code()).collect();
        exits.sort_unstable();
        exits.dedup();
        assert_eq!(exits.len(), errs.len(), "exit codes must be unique");
        for e in &errs {
            assert!(matches!(e.http_status(), 400 | 422 | 429 | 500 | 503 | 504));
        }
    }

    #[test]
    fn retryability_follows_the_status_class() {
        assert!(ProphetError::Overloaded.is_retryable());
        assert!(ProphetError::DeadlineExceeded.is_retryable());
        assert!(!ProphetError::Unprocessable("x".into()).is_retryable());
        assert!(!ProphetError::Store("x".into()).is_retryable());
    }

    #[test]
    fn conversions_land_in_the_right_variant() {
        let e: ProphetError = RunError::RunawayThread {
            thread: machsim::ThreadId(3),
        }
        .into();
        assert_eq!(e.code(), "run_failed");
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: ProphetError = io.into();
        assert_eq!(e.code(), "store_io");
        assert_eq!(e.http_status(), 500);
    }
}
