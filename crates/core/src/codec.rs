//! Binary codec for [`Profiled`] records — the payload layer of the
//! store's `PSR2` frame format.
//!
//! Composes the tree codec in [`proftree::wire`] with varint-packed
//! profiling scalars. Layout (varints are LEB128, `f64` is the exact
//! IEEE-754 bit pattern little-endian; see `proftree::wire` for the
//! tree layout):
//!
//! ```text
//! profiled := name str, tree, profile
//! profile  := tree, varint net_cycles, varint gross_cycles,
//!             varint annotation_events,
//!             u8 has_compress_stats, [compress_stats],
//!             varint peak_tree_bytes, counters
//! compress_stats := 5 varints (nodes_before, nodes_after,
//!                   bytes_before, bytes_after, logical_nodes)
//! counters := 9 varints (instructions, cycles, loads, stores,
//!             l1_misses, l2_misses, llc_misses, llc_writebacks,
//!             dram_bytes)
//! ```
//!
//! The encoding is lossless: decode reproduces a [`Profiled`] whose
//! serde-JSON serialization is byte-identical to the original's (pinned
//! across all workloads in `tests/psr2_codec.rs`), so every consumer of
//! the store sees exactly the bytes it would have read from the JSON
//! (`PSR1`) path.

use cachesim::Counters;
use proftree::wire::{decode_tree, encode_tree, get_str, get_u64, put_str, put_u64};
use proftree::CompressStats;
use tracer::ProfileResult;

use crate::Profiled;

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn get_usize(buf: &[u8], at: &mut usize) -> Result<usize, String> {
    usize::try_from(get_u64(buf, at)?).map_err(|_| "usize overflow".to_string())
}

/// Append the binary encoding of `p` to `out`.
pub fn encode_profiled(p: &Profiled, out: &mut Vec<u8>) {
    put_str(out, &p.name);
    encode_tree(&p.tree, out);
    encode_tree(&p.profile.tree, out);
    put_u64(out, p.profile.net_cycles);
    put_u64(out, p.profile.gross_cycles);
    put_u64(out, p.profile.annotation_events);
    match &p.profile.compress_stats {
        Some(cs) => {
            out.push(1);
            put_usize(out, cs.nodes_before);
            put_usize(out, cs.nodes_after);
            put_usize(out, cs.bytes_before);
            put_usize(out, cs.bytes_after);
            put_u64(out, cs.logical_nodes);
        }
        None => out.push(0),
    }
    put_usize(out, p.profile.peak_tree_bytes);
    let c = &p.profile.counters;
    for v in [
        c.instructions,
        c.cycles,
        c.loads,
        c.stores,
        c.l1_misses,
        c.l2_misses,
        c.llc_misses,
        c.llc_writebacks,
        c.dram_bytes,
    ] {
        put_u64(out, v);
    }
}

/// Decode a [`Profiled`] encoded by [`encode_profiled`]; the whole
/// buffer must be consumed.
pub fn decode_profiled(buf: &[u8]) -> Result<Profiled, String> {
    let mut at = 0usize;
    let name = get_str(buf, &mut at)?;
    let tree = decode_tree(buf, &mut at)?;
    let profile_tree = decode_tree(buf, &mut at)?;
    let net_cycles = get_u64(buf, &mut at)?;
    let gross_cycles = get_u64(buf, &mut at)?;
    let annotation_events = get_u64(buf, &mut at)?;
    let compress_stats = match buf.get(at).copied() {
        Some(0) => {
            at += 1;
            None
        }
        Some(1) => {
            at += 1;
            Some(CompressStats {
                nodes_before: get_usize(buf, &mut at)?,
                nodes_after: get_usize(buf, &mut at)?,
                bytes_before: get_usize(buf, &mut at)?,
                bytes_after: get_usize(buf, &mut at)?,
                logical_nodes: get_u64(buf, &mut at)?,
            })
        }
        Some(b) => return Err(format!("bad compress-stats marker {b}")),
        None => return Err("truncated profile".to_string()),
    };
    let peak_tree_bytes = get_usize(buf, &mut at)?;
    let mut cv = [0u64; 9];
    for v in cv.iter_mut() {
        *v = get_u64(buf, &mut at)?;
    }
    if at != buf.len() {
        return Err(format!(
            "trailing garbage: {} of {} bytes consumed",
            at,
            buf.len()
        ));
    }
    Ok(Profiled {
        name,
        tree,
        profile: ProfileResult {
            tree: profile_tree,
            net_cycles,
            gross_cycles,
            annotation_events,
            compress_stats,
            peak_tree_bytes,
            counters: Counters {
                instructions: cv[0],
                cycles: cv[1],
                loads: cv[2],
                stores: cv[3],
                l1_misses: cv[4],
                l2_misses: cv[5],
                llc_misses: cv[6],
                llc_writebacks: cv[7],
                dram_bytes: cv[8],
            },
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prophet;
    use machsim::MachineConfig;
    use memmodel::CalibrationOptions;
    use tracer::AnnotatedProgram;

    struct Mixed;
    impl AnnotatedProgram for Mixed {
        fn name(&self) -> &str {
            "codec-mixed"
        }
        fn run(&self, t: &mut tracer::Tracer) {
            t.work(5_000);
            t.par_sec_begin("loop");
            for i in 0..32 {
                t.par_task_begin("it");
                t.work(10_000 + (i % 3) * 10);
                if i % 4 == 0 {
                    t.lock_begin(1);
                    t.work(500);
                    t.lock_end(1);
                }
                t.par_task_end();
            }
            t.par_sec_end(false);
            t.work(2_000);
        }
    }

    fn quick_prophet() -> Prophet {
        Prophet::builder()
            .calibration(memmodel::calibrate(
                MachineConfig::westmere_scaled(),
                &CalibrationOptions {
                    thread_counts: vec![2, 4],
                    intensity_steps: 3,
                    packet_cycles: 100_000,
                },
            ))
            .build()
    }

    #[test]
    fn profiled_round_trips_byte_identically_vs_json() {
        let p = quick_prophet().profile(&Mixed);
        let mut bin = Vec::new();
        encode_profiled(&p, &mut bin);
        let back = decode_profiled(&bin).expect("decode");
        let a = serde_json::to_string(&p).unwrap();
        let b = serde_json::to_string(&back).unwrap();
        assert_eq!(a, b, "JSON of decoded PSR2 differs from original");
        // And the binary form is meaningfully denser than the JSON.
        assert!(
            bin.len() * 2 < a.len(),
            "binary {} vs json {}",
            bin.len(),
            a.len()
        );
    }

    #[test]
    fn truncation_and_bit_flips_are_errors_not_panics() {
        let p = quick_prophet().profile(&Mixed);
        let mut bin = Vec::new();
        encode_profiled(&p, &mut bin);
        for cut in [0, 1, bin.len() / 3, bin.len() - 1] {
            assert!(decode_profiled(&bin[..cut]).is_err(), "cut at {cut}");
        }
        // Flipping a byte either fails to decode or decodes to a value
        // (CRC catches it at the frame layer); it must never panic.
        for at in [0usize, bin.len() / 2, bin.len() - 3] {
            let mut bad = bin.clone();
            bad[at] ^= 0x40;
            let _ = decode_profiled(&bad);
        }
    }
}
