#![warn(missing_docs)]

//! The parallel sweep engine: evaluate a declarative grid of prediction
//! jobs `{workload × threads × schedule × paradigm × predictor}` with
//! work-stealing fan-out across OS threads.
//!
//! Three properties make grid evaluation cheap and safe to parallelise:
//!
//! * **Re-entrant prediction.** Every [`Prophet`] prediction-path method
//!   takes `&self`, so one instance behind an [`Arc`] serves every worker
//!   concurrently; the machine calibration memoises through a `OnceLock`
//!   and runs at most once no matter how many jobs race to first use.
//! * **Shared-profile caching.** Jobs address workloads by a stable cache
//!   key (e.g. `"test1:7"`). The [`ProfileCache`] guarantees each key is
//!   traced and burden-annotated *exactly once* per sweep — concurrent
//!   requesters block on the in-flight profile instead of re-running it —
//!   and every consumer shares the result via `Arc<Profiled>`.
//! * **Deterministic reduction.** Results are collected into
//!   input-order slots regardless of which worker evaluates which job, and
//!   nothing on the result path reads wall-clock time, so a sweep's output
//!   is byte-identical across `--jobs` values.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use prophet_core::machsim::{MachineConfig, Paradigm, Schedule};
use prophet_core::omp_rt::OmpOverheads;
use prophet_core::tracer::AnnotatedProgram;
use prophet_core::{baselines, ffemu, synthemu, Profiled, Prophet};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use workloads::{run_real, RealOptions, Test1, Test1Params, Test2, Test2Params};

/// A workload a sweep can evaluate: a stable cache key plus a closure
/// that profiles the program against a given prophet.
///
/// The closure — not a pre-built [`Profiled`] — is stored so the
/// (expensive) trace runs lazily, at most once per sweep, inside the
/// [`ProfileCache`]; specs for an entire grid are cheap to construct.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Cache key; equal keys share one profile. Convention:
    /// `"<family>:<params-seed>"`.
    pub key: String,
    build: Arc<dyn Fn(&Prophet) -> Profiled + Send + Sync>,
}

impl std::fmt::Debug for WorkloadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadSpec")
            .field("key", &self.key)
            .finish_non_exhaustive()
    }
}

impl WorkloadSpec {
    /// A Test1 validation program with `Test1Params::random(seed)`.
    pub fn test1(seed: u64) -> Self {
        Self::program(format!("test1:{seed}"), move || {
            Box::new(Test1::new(Test1Params::random(seed)))
        })
    }

    /// A Test2 validation program with `Test2Params::random(seed)`.
    pub fn test2(seed: u64) -> Self {
        Self::program(format!("test2:{seed}"), move || {
            Box::new(Test2::new(Test2Params::random(seed)))
        })
    }

    /// A workload built from a program factory, profiled with the
    /// prophet's standard options.
    pub fn program(
        key: impl Into<String>,
        make: impl Fn() -> Box<dyn AnnotatedProgram> + Send + Sync + 'static,
    ) -> Self {
        WorkloadSpec {
            key: key.into(),
            build: Arc::new(move |p: &Prophet| p.profile(&*make())),
        }
    }

    /// A workload with a fully custom profiling step (e.g. a non-default
    /// compression tolerance). The key must encode whatever the closure
    /// varies, or distinct configurations would collide in the cache.
    pub fn custom(
        key: impl Into<String>,
        build: impl Fn(&Prophet) -> Profiled + Send + Sync + 'static,
    ) -> Self {
        WorkloadSpec {
            key: key.into(),
            build: Arc::new(build),
        }
    }
}

/// A persistent profile backend a [`ProfileCache`] reads through to and
/// writes behind to: on a memory miss the cache first asks the store, and
/// a freshly-profiled entry is handed to the store for safekeeping.
///
/// Implementations (the `prophet-store` on-disk store) must be safe to
/// call from many sweep workers at once and must treat both operations as
/// best-effort: a `load` returning `None` merely re-profiles, and a
/// failed `save` must not fail the sweep (log and drop).
pub trait ProfileStorage: Send + Sync {
    /// The persisted profile for `key`, if one exists and is valid.
    fn load(&self, key: &str) -> Option<Profiled>;
    /// Persist a freshly-computed profile. Best-effort.
    fn save(&self, key: &str, profiled: &Profiled);
}

/// Counters of a [`ProfileCache`] after (or during) a sweep.
///
/// `misses` counts lookups not served from memory — exactly one per
/// distinct key, however many threads race — so the numbers are
/// deterministic for a given job list regardless of `--jobs`. With a
/// [`ProfileStorage`] attached a miss is satisfied either by the store
/// (`store_hits`) or by running the profiler; `misses - store_hits` is
/// therefore the number of actual profiler runs — see
/// [`CacheStats::profiles`]. `evictions` stays 0 for the default
/// unbounded cache; a capacity-bounded cache (the long-lived
/// `prophet serve` daemon) counts every key displaced by LRU pressure.
///
/// Serialization note: only the four original fields (`hits`, `misses`,
/// `entries`, `evictions`) appear in JSON. The store counters are
/// deliberately excluded so a sweep's output stays byte-identical whether
/// its profiles came from the profiler or from a warm store — the
/// byte-stability contract predictions are pinned by. Store counters
/// surface through `/metrics` and stderr instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from an already-profiled in-memory entry.
    pub hits: u64,
    /// Lookups not served from memory (store hit or profiler run).
    pub misses: u64,
    /// Distinct keys resident.
    pub entries: u64,
    /// Keys evicted under LRU capacity pressure (0 when unbounded).
    pub evictions: u64,
    /// Misses satisfied by the persistent store instead of the profiler.
    /// Not serialized (see above).
    pub store_hits: u64,
    /// Freshly-profiled entries handed to the persistent store.
    /// Not serialized (see above).
    pub store_writes: u64,
}

impl CacheStats {
    /// Number of times the profiler actually ran: memory misses not
    /// absorbed by the persistent store. Zero after a warm restart means
    /// the store replayed every profile.
    pub fn profiles(&self) -> u64 {
        self.misses - self.store_hits
    }
}

// Hand-written (not derived) so the store counters never reach JSON:
// sweep output must stay byte-identical between a cold run and a
// store-warmed restart.
impl Serialize for CacheStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("hits".to_string(), serde::Value::U64(self.hits)),
            ("misses".to_string(), serde::Value::U64(self.misses)),
            ("entries".to_string(), serde::Value::U64(self.entries)),
            ("evictions".to_string(), serde::Value::U64(self.evictions)),
        ])
    }
}

impl Deserialize for CacheStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| -> Result<u64, serde::Error> {
            match v.get(name) {
                Some(val) => u64::from_value(val),
                None => Err(serde::Error::msg(format!("missing field {name}"))),
            }
        };
        Ok(CacheStats {
            hits: field("hits")?,
            misses: field("misses")?,
            entries: field("entries")?,
            evictions: field("evictions")?,
            store_hits: 0,
            store_writes: 0,
        })
    }
}

/// One resident cache entry: the shared profile cell plus its LRU stamp.
struct CacheSlot {
    cell: Arc<OnceLock<Arc<Profiled>>>,
    last_used: u64,
}

struct CacheInner {
    map: HashMap<String, CacheSlot>,
    /// LRU capacity; `None` = unbounded (the default, so one-shot sweep
    /// output is unchanged).
    cap: Option<usize>,
    /// Monotonic use counter stamping recency.
    tick: u64,
}

/// Concurrent once-per-key profile store shared by all sweep workers.
///
/// Internally each key maps to an `Arc<OnceLock<..>>` so the map lock is
/// held only to find the cell; the (long) profiling run happens outside
/// it, and concurrent requesters of the same key block on the cell
/// rather than profiling twice.
///
/// By default the cache is unbounded — correct for one-shot sweeps,
/// where the working set is the grid itself. A long-lived daemon must
/// bound it: [`ProfileCache::with_capacity`] keeps at most `cap` keys,
/// evicting the least-recently-used entry (and counting it in
/// [`CacheStats::evictions`]) when a new key would exceed the cap.
/// Evicting a key whose profile is still being computed is safe: waiters
/// hold their own `Arc` to the cell and complete normally; the cache
/// merely forgets the result.
pub struct ProfileCache {
    inner: Mutex<CacheInner>,
    /// Optional persistent backend: read-through on memory misses,
    /// write-behind for fresh profiles.
    storage: Option<Arc<dyn ProfileStorage>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    store_hits: AtomicU64,
    store_writes: AtomicU64,
}

impl Default for ProfileCache {
    fn default() -> Self {
        Self::with_capacity(None)
    }
}

impl ProfileCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache keeping at most `cap` keys (`None` = unbounded).
    /// A cap of 0 is clamped to 1 so the entry being requested always
    /// fits.
    pub fn with_capacity(cap: Option<usize>) -> Self {
        ProfileCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                cap: cap.map(|c| c.max(1)),
                tick: 0,
            }),
            storage: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
        }
    }

    /// Attach a persistent backend. Memory misses first consult it
    /// (read-through); freshly-run profiles are handed to it
    /// (write-behind). Replacing an existing backend is allowed but the
    /// counters are not reset.
    pub fn set_storage(&mut self, storage: Arc<dyn ProfileStorage>) {
        self.storage = Some(storage);
    }

    /// The profile for `key`, running `profile` on first use (at most
    /// once per residency — an evicted key re-profiles when it returns).
    pub fn get_or_profile(&self, key: &str, profile: impl FnOnce() -> Profiled) -> Arc<Profiled> {
        let cell = {
            let mut inner = self.inner.lock().expect("profile cache poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            let slot = inner
                .map
                .entry(key.to_string())
                .or_insert_with(|| CacheSlot {
                    cell: Arc::new(OnceLock::new()),
                    last_used: tick,
                });
            slot.last_used = tick;
            let cell = slot.cell.clone();
            if let Some(cap) = inner.cap {
                while inner.map.len() > cap {
                    // Evict the least-recently-used key other than the
                    // one just touched (it carries the newest stamp, so
                    // min-by-stamp never selects it while len > 1).
                    let victim = inner
                        .map
                        .iter()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(k, _)| k.clone())
                        .expect("non-empty over-capacity map");
                    inner.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            cell
        };
        let mut ran = false;
        let mut from_store = false;
        let mut wrote_store = false;
        let out = cell
            .get_or_init(|| {
                ran = true;
                if let Some(stored) = self.storage.as_ref().and_then(|s| s.load(key)) {
                    from_store = true;
                    return Arc::new(stored);
                }
                let fresh = profile();
                if let Some(storage) = &self.storage {
                    storage.save(key, &fresh);
                    wrote_store = true;
                }
                Arc::new(fresh)
            })
            .clone();
        if ran {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if from_store {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
            }
            if wrote_store {
                self.store_writes.fetch_add(1, Ordering::Relaxed);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("profile cache poisoned").map.len() as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_writes: self.store_writes.load(Ordering::Relaxed),
        }
    }
}

/// What produces a grid point's speedup (the series of Fig. 11/12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepPredictor {
    /// Ground truth: the actually-parallelised program on the simulated
    /// machine.
    Real,
    /// The fast-forwarding emulator.
    Ff,
    /// The program-synthesis emulator (skipped when `threads` exceeds the
    /// machine's cores — it can only measure the machine it has).
    Syn,
    /// The Intel-Advisor-style suitability baseline.
    Suit,
}

impl SweepPredictor {
    /// Stable lower-case name for keys/CLI.
    pub fn name(self) -> &'static str {
        match self {
            SweepPredictor::Real => "real",
            SweepPredictor::Ff => "ff",
            SweepPredictor::Syn => "syn",
            SweepPredictor::Suit => "suit",
        }
    }
}

/// A predictor plus whether the memory performance model's burden factors
/// apply (only meaningful for [`SweepPredictor::Ff`]/[`SweepPredictor::Syn`];
/// `Real` and `Suit` ignore it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorSpec {
    /// The predictor.
    pub predictor: SweepPredictor,
    /// Apply burden factors (the `PredM` vs `Pred` distinction).
    pub memory_model: bool,
}

impl PredictorSpec {
    /// Ground truth.
    pub fn real() -> Self {
        PredictorSpec {
            predictor: SweepPredictor::Real,
            memory_model: false,
        }
    }
    /// Fast-forward emulator.
    pub fn ff(memory_model: bool) -> Self {
        PredictorSpec {
            predictor: SweepPredictor::Ff,
            memory_model,
        }
    }
    /// Synthesizer.
    pub fn syn(memory_model: bool) -> Self {
        PredictorSpec {
            predictor: SweepPredictor::Syn,
            memory_model,
        }
    }
    /// Suitability baseline.
    pub fn suit() -> Self {
        PredictorSpec {
            predictor: SweepPredictor::Suit,
            memory_model: false,
        }
    }

    /// Parse a CLI/request spelling. `ff`/`syn` default the memory model
    /// on; a `-mm` suffix disables it and `+mm` states the default
    /// explicitly. Returns `None` for unknown predictors.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "real" => PredictorSpec::real(),
            "suit" => PredictorSpec::suit(),
            "ff" | "ff+mm" => PredictorSpec::ff(true),
            "ff-mm" => PredictorSpec::ff(false),
            "syn" | "syn+mm" => PredictorSpec::syn(true),
            "syn-mm" => PredictorSpec::syn(false),
            _ => return None,
        })
    }

    /// Stable spelling accepted back by [`PredictorSpec::parse`]
    /// (`real`, `ff+mm`, `syn-mm`, ...).
    pub fn label(self) -> String {
        match self.predictor {
            SweepPredictor::Real | SweepPredictor::Suit => self.predictor.name().to_string(),
            SweepPredictor::Ff | SweepPredictor::Syn => format!(
                "{}{}",
                self.predictor.name(),
                if self.memory_model { "+mm" } else { "-mm" }
            ),
        }
    }
}

/// Per-job overrides of the prophet's standard configuration, so ablation
/// sweeps (quantum, lock penalty, overhead studies) ride the same engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct Overrides {
    /// Replace the target machine (quantum studies set
    /// `machine.quantum_cycles` here).
    pub machine: Option<MachineConfig>,
    /// FF contended-lock penalty, cycles.
    pub lock_penalty: Option<u64>,
    /// OpenMP construct overheads (Real, FF, and synthesizer runs).
    pub omp_overheads: Option<OmpOverheads>,
}

/// One grid point to evaluate.
#[derive(Debug, Clone, Copy)]
pub struct SweepJob {
    /// Index into the sweep's workload list.
    pub workload: usize,
    /// Thread/CPU count.
    pub threads: u32,
    /// OpenMP schedule.
    pub schedule: Schedule,
    /// Threading paradigm.
    pub paradigm: Paradigm,
    /// Predictor and memory-model flag.
    pub spec: PredictorSpec,
    /// Configuration overrides.
    pub overrides: Overrides,
}

/// A declarative grid: the cartesian product of its axes, expanded
/// workload-major (workload, then threads, schedule, paradigm, predictor)
/// so all jobs sharing a profile are adjacent in the job list.
#[derive(Debug, Clone)]
pub struct GridSpec {
    /// Workloads (profiled once each).
    pub workloads: Vec<WorkloadSpec>,
    /// Thread counts.
    pub threads: Vec<u32>,
    /// Schedules.
    pub schedules: Vec<Schedule>,
    /// Paradigms.
    pub paradigms: Vec<Paradigm>,
    /// Predictor series.
    pub predictors: Vec<PredictorSpec>,
    /// Overrides applied to every job.
    pub overrides: Overrides,
}

impl GridSpec {
    /// A grid over `workloads` with the standard single-axis defaults:
    /// OpenMP, static-block, synthesizer + ground truth.
    pub fn new(workloads: Vec<WorkloadSpec>) -> Self {
        GridSpec {
            workloads,
            threads: vec![2, 4, 6, 8, 10, 12],
            schedules: vec![Schedule::static_block()],
            paradigms: vec![Paradigm::OpenMp],
            predictors: vec![PredictorSpec::real(), PredictorSpec::syn(true)],
            overrides: Overrides::default(),
        }
    }

    /// Expand to the ordered job list.
    pub fn expand(&self) -> Vec<SweepJob> {
        let mut jobs = Vec::with_capacity(
            self.workloads.len()
                * self.threads.len()
                * self.schedules.len()
                * self.paradigms.len()
                * self.predictors.len(),
        );
        for w in 0..self.workloads.len() {
            for &threads in &self.threads {
                for &schedule in &self.schedules {
                    for &paradigm in &self.paradigms {
                        for &spec in &self.predictors {
                            jobs.push(SweepJob {
                                workload: w,
                                threads,
                                schedule,
                                paradigm,
                                spec,
                                overrides: self.overrides,
                            });
                        }
                    }
                }
            }
        }
        jobs
    }
}

/// One evaluated grid point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Workload cache key.
    pub workload: String,
    /// Predictor.
    pub predictor: SweepPredictor,
    /// Memory model applied.
    pub memory_model: bool,
    /// Thread count.
    pub threads: u32,
    /// Schedule name (paper notation).
    pub schedule: String,
    /// Paradigm name.
    pub paradigm: String,
    /// Measured or predicted speedup.
    pub speedup: f64,
    /// Parallel time, cycles.
    pub predicted_cycles: u64,
    /// Serial time, cycles.
    pub serial_cycles: u64,
}

/// The outcome of a sweep: points in deterministic job order (skipped
/// jobs — synthesizer beyond the machine's cores — removed), plus cache
/// counters. Nothing here depends on wall-clock time or worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// Evaluated points, in job order.
    pub points: Vec<SweepPoint>,
    /// Jobs in the expanded grid.
    pub jobs_total: usize,
    /// Jobs skipped (synthesizer thread counts beyond the machine).
    pub jobs_skipped: usize,
    /// Profile-cache counters.
    pub cache: CacheStats,
}

/// Wall-clock nanoseconds a sweep spent in each pipeline stage, summed
/// across workers. Diagnostics only: timings live on the [`SweepEngine`],
/// never inside [`SweepResult`], so sweep output stays byte-identical
/// across worker counts and runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Nanoseconds spent profiling workloads (cache misses only; hits
    /// cost nothing beyond the lookup).
    pub profile_nanos: u64,
    /// Nanoseconds spent inside predictor backends (ff/syn/real/suit).
    pub predict_nanos: u64,
}

impl StageTimings {
    /// The stage time accrued since an `earlier` snapshot (saturating,
    /// so a racing reset or wrap never yields a bogus huge delta). This
    /// is how the serve daemon attributes one batch's engine time to
    /// profile/predict sub-spans: snapshot before, snapshot after,
    /// subtract.
    pub fn since(&self, earlier: &StageTimings) -> StageTimings {
        StageTimings {
            profile_nanos: self.profile_nanos.saturating_sub(earlier.profile_nanos),
            predict_nanos: self.predict_nanos.saturating_sub(earlier.predict_nanos),
        }
    }
}

/// The engine: a shared prophet, a profile cache, and a worker count.
pub struct SweepEngine {
    prophet: Arc<Prophet>,
    cache: ProfileCache,
    jobs: usize,
    profile_nanos: AtomicU64,
    predict_nanos: AtomicU64,
}

impl SweepEngine {
    /// An engine owning `prophet`, using every available core.
    pub fn new(prophet: Prophet) -> Self {
        Self::from_arc(Arc::new(prophet))
    }

    /// An engine sharing an existing prophet.
    pub fn from_arc(prophet: Arc<Prophet>) -> Self {
        SweepEngine {
            prophet,
            cache: ProfileCache::new(),
            jobs: 0,
            profile_nanos: AtomicU64::new(0),
            predict_nanos: AtomicU64::new(0),
        }
    }

    /// Set the worker count (`0` = all available cores).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Bound the profile cache to an LRU capacity (`None` = unbounded,
    /// the default). Intended for long-lived engines (`prophet serve`);
    /// replaces the cache (dropping any attached store), so call before
    /// [`SweepEngine::with_profile_store`] and before the first sweep.
    pub fn with_profile_cache_capacity(mut self, cap: Option<usize>) -> Self {
        self.cache = ProfileCache::with_capacity(cap);
        self
    }

    /// Attach a persistent profile store the cache reads through to.
    /// On a daemon restart the store replays profiles instead of
    /// re-running the tracer; predictions are byte-identical either way.
    pub fn with_profile_store(mut self, storage: Arc<dyn ProfileStorage>) -> Self {
        self.cache.set_storage(storage);
        self
    }

    /// The shared prophet.
    pub fn prophet(&self) -> &Prophet {
        &self.prophet
    }

    /// The profile cache (inspect [`ProfileCache::stats`] after a run).
    pub fn cache(&self) -> &ProfileCache {
        &self.cache
    }

    /// Cumulative per-stage wall-clock spent by this engine's sweeps.
    /// Summed across workers, so on a parallel sweep the total exceeds
    /// elapsed time. Never folded into [`SweepResult`].
    pub fn stage_timings(&self) -> StageTimings {
        StageTimings {
            profile_nanos: self.profile_nanos.load(Ordering::Relaxed),
            predict_nanos: self.predict_nanos.load(Ordering::Relaxed),
        }
    }

    /// Evaluate a declarative grid.
    pub fn run(&self, grid: &GridSpec) -> SweepResult {
        self.run_jobs(&grid.workloads, &grid.expand())
    }

    /// Evaluate an explicit job list (for irregular grids where each
    /// workload carries its own schedule/paradigm, e.g. Fig. 12).
    pub fn run_jobs(&self, workloads: &[WorkloadSpec], jobs: &[SweepJob]) -> SweepResult {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.jobs)
            .build()
            .expect("sweep thread pool");
        let evaluated: Vec<Option<SweepPoint>> =
            pool.install(|| jobs.par_iter().map(|j| self.eval(workloads, j)).collect());
        let jobs_total = jobs.len();
        let points: Vec<SweepPoint> = evaluated.into_iter().flatten().collect();
        SweepResult {
            jobs_total,
            jobs_skipped: jobs_total - points.len(),
            points,
            cache: self.cache.stats(),
        }
    }

    /// Whether `job` would be deterministically skipped (synthesizer
    /// thread count beyond the target machine's cores). Exposed so
    /// callers that slice a combined job list back apart — the serve
    /// batcher — can reconstruct each slice's point count without
    /// re-evaluating anything.
    pub fn would_skip(&self, job: &SweepJob) -> bool {
        let machine = job
            .overrides
            .machine
            .unwrap_or_else(|| *self.prophet.machine());
        job.spec.predictor == SweepPredictor::Syn && job.threads > machine.cores
    }

    /// Evaluate one job. `None` = deterministically skipped (synthesizer
    /// thread count beyond the target machine's cores).
    fn eval(&self, workloads: &[WorkloadSpec], job: &SweepJob) -> Option<SweepPoint> {
        let machine = job
            .overrides
            .machine
            .unwrap_or_else(|| *self.prophet.machine());
        if self.would_skip(job) {
            return None;
        }
        let spec = &workloads[job.workload];
        let profile_t0 = std::time::Instant::now();
        let profiled = self
            .cache
            .get_or_profile(&spec.key, || (spec.build)(&self.prophet));
        self.profile_nanos.fetch_add(
            u64::try_from(profile_t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );

        let predict_t0 = std::time::Instant::now();
        let (speedup, predicted_cycles, serial_cycles) = match job.spec.predictor {
            SweepPredictor::Real => {
                let mut opts = RealOptions::new(job.threads, job.paradigm, job.schedule);
                opts.machine = machine;
                if let Some(oh) = job.overrides.omp_overheads {
                    opts.omp_overheads = oh;
                }
                let r = run_real(&profiled.tree, &opts).expect("ground-truth run");
                (r.speedup, r.elapsed_cycles, r.serial_cycles)
            }
            SweepPredictor::Ff => {
                let p = ffemu::predict(
                    &profiled.tree,
                    ffemu::FfOptions {
                        cpus: job.threads,
                        schedule: job.schedule,
                        overheads: job
                            .overrides
                            .omp_overheads
                            .unwrap_or_else(OmpOverheads::westmere_scaled),
                        use_burden: job.spec.memory_model,
                        contended_lock_penalty: job
                            .overrides
                            .lock_penalty
                            .unwrap_or(machine.context_switch_cycles),
                        model_pipelines: true,
                        expand_runs: false,
                    },
                );
                (p.speedup, p.predicted_cycles, p.serial_cycles)
            }
            SweepPredictor::Syn => {
                let mut so = synthemu::SynthOptions::new(job.threads, job.paradigm);
                so.machine = machine;
                so.schedule = job.schedule;
                so.use_burden = job.spec.memory_model;
                if let Some(oh) = job.overrides.omp_overheads {
                    so.omp_overheads = oh;
                }
                let p = synthemu::predict(&profiled.tree, &so).expect("synthesizer run");
                (p.speedup, p.predicted_cycles, p.serial_cycles)
            }
            SweepPredictor::Suit => {
                let p = baselines::suitability_predict(&profiled.tree, job.threads);
                (p.speedup, p.predicted_cycles, p.serial_cycles)
            }
        };
        self.predict_nanos.fetch_add(
            u64::try_from(predict_t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        Some(SweepPoint {
            workload: spec.key.clone(),
            predictor: job.spec.predictor,
            memory_model: job.spec.memory_model,
            threads: job.threads,
            schedule: job.schedule.name(),
            paradigm: job.paradigm.name().to_string(),
            speedup,
            predicted_cycles,
            serial_cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_prophet() -> Prophet {
        Prophet::new()
    }

    #[test]
    fn cache_same_key_shares_one_profile() {
        let prophet = tiny_prophet();
        let cache = ProfileCache::new();
        let spec = WorkloadSpec::test1(3);
        let a = cache.get_or_profile(&spec.key, || (spec.build)(&prophet));
        let b = cache.get_or_profile(&spec.key, || (spec.build)(&prophet));
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc<Profiled>");
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 1, 1));
    }

    #[test]
    fn cache_distinct_seeds_miss_separately() {
        let prophet = tiny_prophet();
        let cache = ProfileCache::new();
        let s1 = WorkloadSpec::test1(1);
        let s2 = WorkloadSpec::test1(2);
        let a = cache.get_or_profile(&s1.key, || (s1.build)(&prophet));
        let b = cache.get_or_profile(&s2.key, || (s2.build)(&prophet));
        assert!(!Arc::ptr_eq(&a, &b));
        assert_ne!(a.tree.total_length(), 0);
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.entries), (2, 0, 2));
    }

    #[test]
    fn cache_profiles_once_under_concurrency() {
        let prophet = Arc::new(tiny_prophet());
        let cache = Arc::new(ProfileCache::new());
        let spec = WorkloadSpec::test1(5);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = Arc::clone(&cache);
                let prophet = Arc::clone(&prophet);
                let spec = spec.clone();
                s.spawn(move || {
                    let _ = cache.get_or_profile(&spec.key, || (spec.build)(&prophet));
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 1, "profiler must run exactly once per key");
        assert_eq!(s.hits, 3);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let prophet = tiny_prophet();
        let cache = ProfileCache::with_capacity(Some(2));
        let specs: Vec<WorkloadSpec> = (0..3).map(WorkloadSpec::test1).collect();
        let profile = |s: &WorkloadSpec| {
            let _ = cache.get_or_profile(&s.key, || (s.build)(&prophet));
        };
        profile(&specs[0]);
        profile(&specs[1]);
        profile(&specs[0]); // refresh 0: now 1 is the LRU entry
        profile(&specs[2]); // evicts 1
        let s = cache.stats();
        assert_eq!(s.entries, 2);
        assert_eq!(s.evictions, 1);
        // 0 stayed resident (refresh + hit); 1 must re-profile.
        profile(&specs[0]);
        assert_eq!(cache.stats().hits, 2);
        profile(&specs[1]);
        assert_eq!(cache.stats().misses, 4, "evicted key profiles again");
    }

    #[test]
    fn unbounded_cache_reports_zero_evictions() {
        let prophet = tiny_prophet();
        let cache = ProfileCache::new();
        for seed in 0..4 {
            let s = WorkloadSpec::test1(seed);
            let _ = cache.get_or_profile(&s.key, || (s.build)(&prophet));
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (4, 0));
    }

    /// An in-memory [`ProfileStorage`] standing in for the on-disk store.
    #[derive(Default)]
    struct MapStore {
        map: Mutex<HashMap<String, Profiled>>,
        loads: AtomicU64,
        saves: AtomicU64,
    }

    impl ProfileStorage for MapStore {
        fn load(&self, key: &str) -> Option<Profiled> {
            self.loads.fetch_add(1, Ordering::Relaxed);
            self.map.lock().unwrap().get(key).cloned()
        }
        fn save(&self, key: &str, profiled: &Profiled) {
            self.saves.fetch_add(1, Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert(key.to_string(), profiled.clone());
        }
    }

    #[test]
    fn storage_read_through_and_write_behind() {
        let prophet = tiny_prophet();
        let store = Arc::new(MapStore::default());

        // Cold cache + empty store: the profiler runs, the store is fed.
        let mut cold = ProfileCache::new();
        cold.set_storage(store.clone() as Arc<dyn ProfileStorage>);
        let spec = WorkloadSpec::test1(9);
        let fresh = cold.get_or_profile(&spec.key, || (spec.build)(&prophet));
        let s = cold.stats();
        assert_eq!((s.misses, s.store_hits, s.store_writes), (1, 0, 1));
        assert_eq!(s.profiles(), 1);

        // A fresh cache over the warm store: zero profiler runs.
        let mut warm = ProfileCache::new();
        warm.set_storage(store.clone() as Arc<dyn ProfileStorage>);
        let replayed = warm.get_or_profile(&spec.key, || panic!("profiler must not run"));
        let s = warm.stats();
        assert_eq!((s.misses, s.store_hits, s.store_writes), (1, 1, 0));
        assert_eq!(s.profiles(), 0, "store absorbed the miss");
        assert_eq!(
            serde_json::to_string(&*fresh).unwrap(),
            serde_json::to_string(&*replayed).unwrap(),
            "replayed profile must match the fresh one byte for byte"
        );

        // Memory hits never touch the store.
        let loads_before = store.loads.load(Ordering::Relaxed);
        let _ = warm.get_or_profile(&spec.key, || panic!("profiler must not run"));
        assert_eq!(store.loads.load(Ordering::Relaxed), loads_before);
    }

    #[test]
    fn cache_stats_serialization_excludes_store_counters() {
        let stats = CacheStats {
            hits: 3,
            misses: 2,
            entries: 2,
            evictions: 1,
            store_hits: 2,
            store_writes: 5,
        };
        let js = serde_json::to_string(&stats).unwrap();
        assert_eq!(
            js, r#"{"hits":3,"misses":2,"entries":2,"evictions":1}"#,
            "store counters must never reach JSON (byte-stability contract)"
        );
        let back: CacheStats = serde_json::from_str(&js).unwrap();
        assert_eq!((back.hits, back.misses), (3, 2));
        assert_eq!((back.store_hits, back.store_writes), (0, 0));
    }

    #[test]
    fn predictor_labels_roundtrip() {
        for s in [
            PredictorSpec::real(),
            PredictorSpec::suit(),
            PredictorSpec::ff(true),
            PredictorSpec::ff(false),
            PredictorSpec::syn(true),
            PredictorSpec::syn(false),
        ] {
            assert_eq!(PredictorSpec::parse(&s.label()), Some(s));
        }
        assert_eq!(PredictorSpec::parse("bogus"), None);
    }

    #[test]
    fn grid_expansion_is_workload_major() {
        let mut grid = GridSpec::new(vec![WorkloadSpec::test1(0), WorkloadSpec::test1(1)]);
        grid.threads = vec![2, 4];
        grid.predictors = vec![PredictorSpec::real()];
        let jobs = grid.expand();
        assert_eq!(jobs.len(), 4);
        assert_eq!(
            jobs.iter().map(|j| j.workload).collect::<Vec<_>>(),
            vec![0, 0, 1, 1]
        );
        assert_eq!(
            jobs.iter().map(|j| j.threads).collect::<Vec<_>>(),
            vec![2, 4, 2, 4]
        );
    }

    #[test]
    fn synthesizer_jobs_beyond_cores_are_skipped() {
        let engine = SweepEngine::new(tiny_prophet()).with_jobs(1);
        let mut grid = GridSpec::new(vec![WorkloadSpec::test1(11)]);
        let cores = engine.prophet().machine().cores;
        grid.threads = vec![2, cores + 4];
        grid.predictors = vec![PredictorSpec::syn(false)];
        let r = engine.run(&grid);
        assert_eq!(r.jobs_total, 2);
        assert_eq!(r.jobs_skipped, 1);
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].threads, 2);
    }

    #[test]
    fn stage_timings_accumulate_outside_the_result() {
        let engine = SweepEngine::new(tiny_prophet()).with_jobs(1);
        assert_eq!(engine.stage_timings(), StageTimings::default());
        let mut grid = GridSpec::new(vec![WorkloadSpec::test1(21)]);
        grid.threads = vec![2];
        grid.predictors = vec![PredictorSpec::ff(true)];
        let r = engine.run(&grid);
        let t = engine.stage_timings();
        assert!(t.profile_nanos > 0, "profiling took measurable time");
        assert!(t.predict_nanos > 0, "prediction took measurable time");
        // Timings are diagnostics on the engine; the result JSON — which
        // the determinism test byte-compares across worker counts — must
        // not carry them.
        let json = serde_json::to_string(&r).expect("serialise sweep");
        assert!(!json.contains("nanos"), "timings leaked into SweepResult");
    }
}
