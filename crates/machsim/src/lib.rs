#![warn(missing_docs)]

//! A deterministic discrete-event multicore machine simulator.
//!
//! `machsim` is the hardware/OS substrate for Parallel Prophet's
//! reproduction. The paper measured its ground truth ("Real" speedups), ran
//! its synthesizer, and calibrated its memory model on a physical 12-core
//! Westmere Xeon; this crate plays that machine's role deterministically:
//!
//! * **Cores + preemptive OS scheduler** — a global round-robin run queue
//!   with a configurable quantum and context-switch cost. Logical threads
//!   may oversubscribe the cores, which is exactly the behaviour the paper
//!   shows the fast-forward emulator cannot capture (Fig. 7) and the
//!   synthesizer can.
//! * **Synchronisation** — FIFO mutexes with ownership hand-off, counting
//!   barriers, and park/unpark with permits (for building runtimes such as
//!   the OpenMP-like and Cilk-like layers in `omp_rt` / `cilk_rt`).
//! * **Shared-DRAM bandwidth model** — every compute segment carries a pure
//!   CPU part and an LLC-miss part; concurrent memory-active segments share
//!   the DRAM through a flow-level model with an M/M/1-style queueing term,
//!   so memory-bound parallel runs genuinely saturate (Fig. 2 behaviour).
//!
//! The simulation is single-real-threaded and fully deterministic: event
//! ties are broken by sequence number, victim selection in higher layers
//! uses seeded RNGs, and no wall-clock time is read anywhere.
//!
//! # Example
//!
//! ```
//! use machsim::{Machine, MachineConfig, ScriptBody, ScriptOp, WorkPacket};
//!
//! // Two threads each compute 1000 cycles on a 2-core machine.
//! let mut m = Machine::new(MachineConfig::small(2));
//! for _ in 0..2 {
//!     m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::cpu(1000))]));
//! }
//! let stats = m.run().unwrap();
//! assert_eq!(stats.elapsed_cycles, 1000);
//! ```

pub mod config;
pub mod machine;
pub mod mem;
pub mod prog;
pub mod script;
pub mod stats;
pub mod sync;
pub mod thread;
pub mod trace;

pub use config::MachineConfig;
pub use machine::{Machine, RunError};
pub use mem::MemSolver;
pub use prog::{
    POp, ParSection, Paradigm, ParallelProgram, PipeItem, PipeSection, Schedule, TaskBody, TaskList,
};
pub use script::{ScriptBody, ScriptOp};
pub use stats::RunStats;
pub use sync::{BarrierId, SimLockId};
pub use thread::{Action, Env, ThreadBody, ThreadId, WorkPacket};
pub use trace::{Span, Timeline};
