//! Run statistics reported by the machine.

use serde::{Deserialize, Serialize};

/// Per-thread accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Cycles the thread actually occupied a core.
    pub busy_cycles: u64,
    /// DRAM bytes the thread moved.
    pub dram_bytes: u64,
    /// Simulated time at spawn.
    pub spawned_at: u64,
    /// Simulated time at exit (0 when the thread never exited).
    pub finished_at: u64,
}

/// Whole-run accounting returned by [`crate::Machine::run`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total simulated time (makespan) in cycles.
    pub elapsed_cycles: u64,
    /// Number of threads spawned over the run.
    pub threads_spawned: u32,
    /// Context switches charged (dispatches of a different thread).
    pub context_switches: u64,
    /// Preemptions at quantum expiry.
    pub preemptions: u64,
    /// Total core-busy cycles (≤ cores × elapsed).
    pub busy_cycles: u64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// Lock acquisitions across all locks.
    pub lock_acquisitions: u64,
    /// Lock acquisitions that had to wait.
    pub lock_contended: u64,
    /// Largest number of simultaneously live (spawned, not exited) threads.
    pub peak_live_threads: u32,
    /// Per-thread detail, indexed by `ThreadId.0`.
    pub threads: Vec<ThreadStats>,
    /// Execution timeline (populated only when
    /// [`crate::Machine::enable_tracing`] was called).
    pub timeline: Option<crate::trace::Timeline>,
}

impl RunStats {
    /// Average core utilisation in `[0, 1]` over `cores`.
    pub fn utilization(&self, cores: u32) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (self.elapsed_cycles as f64 * cores as f64)
        }
    }

    /// Average DRAM traffic over the run, in bytes/cycle.
    pub fn avg_traffic_bytes_per_cycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_traffic() {
        let s = RunStats {
            elapsed_cycles: 1000,
            busy_cycles: 1500,
            dram_bytes: 2000,
            ..Default::default()
        };
        assert!((s.utilization(2) - 0.75).abs() < 1e-12);
        assert!((s.avg_traffic_bytes_per_cycle() - 2.0).abs() < 1e-12);
        let empty = RunStats::default();
        assert_eq!(empty.utilization(4), 0.0);
        assert_eq!(empty.avg_traffic_bytes_per_cycle(), 0.0);
    }
}
