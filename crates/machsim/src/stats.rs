//! Run statistics reported by the machine.

use serde::{Deserialize, Serialize};

/// Per-thread accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Cycles the thread actually occupied a core.
    pub busy_cycles: u64,
    /// DRAM bytes the thread moved.
    pub dram_bytes: u64,
    /// Simulated time at spawn.
    pub spawned_at: u64,
    /// Simulated time at exit (0 when the thread never exited).
    pub finished_at: u64,
}

/// Whole-run accounting returned by [`crate::Machine::run`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total simulated time (makespan) in cycles.
    pub elapsed_cycles: u64,
    /// Number of threads spawned over the run.
    pub threads_spawned: u32,
    /// Context switches charged (dispatches of a different thread).
    pub context_switches: u64,
    /// Preemptions at quantum expiry.
    pub preemptions: u64,
    /// Total core-busy cycles (≤ cores × elapsed).
    pub busy_cycles: u64,
    /// Total DRAM bytes moved.
    pub dram_bytes: u64,
    /// Lock acquisitions across all locks.
    pub lock_acquisitions: u64,
    /// Lock acquisitions that had to wait.
    pub lock_contended: u64,
    /// Largest number of simultaneously live (spawned, not exited) threads.
    pub peak_live_threads: u32,
    /// Per-thread detail, indexed by `ThreadId.0`.
    pub threads: Vec<ThreadStats>,
    /// Execution timeline (populated only when
    /// [`crate::Machine::enable_tracing`] was called).
    pub timeline: Option<crate::trace::Timeline>,
}

impl RunStats {
    /// Average core utilisation in `[0, 1]` over `cores`.
    pub fn utilization(&self, cores: u32) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / (self.elapsed_cycles as f64 * cores as f64)
        }
    }

    /// Average DRAM traffic over the run, in bytes/cycle.
    pub fn avg_traffic_bytes_per_cycle(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.elapsed_cycles as f64
        }
    }

    /// Average core utilisation as a percentage over `cores`
    /// (`utilization × 100`).
    pub fn utilization_percent(&self, cores: u32) -> f64 {
        self.utilization(cores) * 100.0
    }

    /// Fraction of lock acquisitions that had to wait, in `[0, 1]`.
    /// Zero when no locks were taken.
    pub fn lock_contention_ratio(&self) -> f64 {
        if self.lock_acquisitions == 0 {
            0.0
        } else {
            self.lock_contended as f64 / self.lock_acquisitions as f64
        }
    }

    /// Context switches per million simulated cycles. Zero for an
    /// empty run.
    pub fn context_switch_rate(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.context_switches as f64 * 1.0e6 / self.elapsed_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_traffic() {
        let s = RunStats {
            elapsed_cycles: 1000,
            busy_cycles: 1500,
            dram_bytes: 2000,
            ..Default::default()
        };
        assert!((s.utilization(2) - 0.75).abs() < 1e-12);
        assert!((s.avg_traffic_bytes_per_cycle() - 2.0).abs() < 1e-12);
        let empty = RunStats::default();
        assert_eq!(empty.utilization(4), 0.0);
        assert_eq!(empty.avg_traffic_bytes_per_cycle(), 0.0);
    }

    #[test]
    fn derived_rates() {
        let s = RunStats {
            elapsed_cycles: 2_000_000,
            busy_cycles: 1_000_000,
            context_switches: 500,
            lock_acquisitions: 200,
            lock_contended: 50,
            ..Default::default()
        };
        assert!((s.utilization_percent(1) - 50.0).abs() < 1e-9);
        assert!((s.lock_contention_ratio() - 0.25).abs() < 1e-12);
        // 500 switches over 2M cycles = 250 per million.
        assert!((s.context_switch_rate() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn derived_rates_empty_run_are_zero() {
        let empty = RunStats::default();
        assert_eq!(empty.lock_contention_ratio(), 0.0);
        assert_eq!(empty.context_switch_rate(), 0.0);
        assert_eq!(empty.utilization_percent(8), 0.0);
    }
}
