//! Flow-level DRAM bandwidth sharing.
//!
//! Every running compute segment is modelled as a fluid alternation of pure
//! CPU work (`C` cycles) and LLC-miss stalls (`M` misses × ω cycles each).
//! When several memory-active segments run concurrently they share the DRAM
//! channel; the per-miss stall ω grows with utilisation through an
//! M/M/1-style queueing term and is additionally capped so aggregate
//! traffic never exceeds the peak bandwidth:
//!
//! * achieved traffic of segment *i*: `τᵢ(ω) = Mᵢ·line / (Cᵢ + Mᵢ·ω)`
//!   bytes per cycle (rate-invariant in segment progress);
//! * utilisation `u(ω) = Σ τᵢ(ω) / B_peak`;
//! * queueing stall `g(ω) = ω₀ · (1 + κ·u²/(1-u))`;
//! * ω is the fixed point of `g`, raised further if needed so that
//!   `u(ω) ≤ 1`.
//!
//! This is the mechanism that produces genuine speedup saturation in
//! memory-bound parallel runs (paper Fig. 2) and the curves that the
//! memory model's Ψ/Φ formulas (Eqs. 6-7) are calibrated against.

use crate::config::MachineConfig;

/// Solves for the shared per-miss stall ω given the set of concurrently
/// running segments.
#[derive(Debug, Clone, Copy)]
pub struct MemSolver {
    line: f64,
    b_peak: f64,
    omega0: f64,
    kappa: f64,
}

/// Utilisation ceiling: the queueing term diverges as u → 1, so the solver
/// clamps just below.
const U_MAX: f64 = 0.999;

impl MemSolver {
    /// Build from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        MemSolver {
            line: cfg.line_bytes as f64,
            b_peak: cfg.dram_bytes_per_cycle,
            omega0: cfg.dram_base_stall,
            kappa: cfg.queue_kappa,
        }
    }

    /// Base (uncontended) per-miss stall ω₀.
    pub fn omega0(&self) -> f64 {
        self.omega0
    }

    /// Aggregate achieved traffic in bytes/cycle at a given ω for segments
    /// described by `(compute_cycles, llc_misses)` pairs.
    pub fn traffic_at(&self, segs: &[(f64, f64)], omega: f64) -> f64 {
        segs.iter()
            .map(|&(c, m)| {
                if m <= 0.0 {
                    0.0
                } else {
                    m * self.line / (c + m * omega)
                }
            })
            .sum()
    }

    /// Solve for the shared ω across `segs`. Returns ω ≥ ω₀.
    pub fn solve(&self, segs: &[(f64, f64)]) -> f64 {
        let any_mem = segs.iter().any(|&(_, m)| m > 0.0);
        if !any_mem {
            return self.omega0;
        }

        // ω solves ω = g(ω). g is decreasing in ω (more stall → less
        // traffic → less queueing), so F(ω) = ω − g(ω) is strictly
        // increasing and has a unique root ≥ ω₀; bisect it. The clamped
        // utilisation bounds g, giving a safe upper bracket.
        let mut omega = self.omega0;
        if self.kappa > 0.0 {
            let g = |omega: f64| -> f64 {
                let u = (self.traffic_at(segs, omega) / self.b_peak).min(U_MAX);
                self.omega0 * (1.0 + self.kappa * u * u / (1.0 - u))
            };
            let mut lo = self.omega0;
            let mut hi = self.omega0 * (1.0 + self.kappa * U_MAX * U_MAX / (1.0 - U_MAX)) + 1.0;
            if g(lo) <= lo {
                omega = lo;
            } else {
                for _ in 0..100 {
                    let mid = 0.5 * (lo + hi);
                    if g(mid) > mid {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                omega = 0.5 * (lo + hi);
            }
        }

        // Hard bandwidth cap: if traffic still exceeds peak, raise ω until
        // it fits (traffic is strictly decreasing in ω).
        if self.traffic_at(segs, omega) > self.b_peak {
            let mut lo = omega;
            let mut hi = omega.max(1.0);
            while self.traffic_at(segs, hi) > self.b_peak {
                hi *= 2.0;
                if hi > 1e12 {
                    break;
                }
            }
            for _ in 0..80 {
                let mid = 0.5 * (lo + hi);
                if self.traffic_at(segs, mid) > self.b_peak {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            omega = hi;
        }
        omega.max(self.omega0)
    }

    /// Stretch factor of a segment `(c, m)` at stall ω: the ratio of its
    /// duration under contention to its uncontended duration.
    pub fn stretch(&self, c: f64, m: f64, omega: f64) -> f64 {
        if m <= 0.0 {
            return 1.0;
        }
        let base = c + m * self.omega0;
        if base <= 0.0 {
            return 1.0;
        }
        ((c + m * omega) / base).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver() -> MemSolver {
        let mut cfg = MachineConfig::westmere_scaled();
        cfg.dram_bytes_per_cycle = 4.0;
        cfg.dram_base_stall = 60.0;
        cfg.queue_kappa = 0.5;
        MemSolver::new(&cfg)
    }

    #[test]
    fn no_memory_segments_return_omega0() {
        let s = solver();
        assert_eq!(s.solve(&[]), 60.0);
        assert_eq!(s.solve(&[(1000.0, 0.0), (500.0, 0.0)]), 60.0);
    }

    #[test]
    fn single_light_segment_barely_stalls() {
        let s = solver();
        // 1 miss per 10_000 compute cycles: negligible traffic.
        let omega = s.solve(&[(10_000.0, 1.0)]);
        assert!(omega < 60.5, "omega {omega}");
    }

    #[test]
    fn omega_monotone_in_concurrency() {
        let s = solver();
        // A hungry segment: all-memory (C=0).
        let seg = (0.0f64, 1000.0f64);
        let mut prev = 0.0;
        for n in 1..=12 {
            let segs: Vec<_> = (0..n).map(|_| seg).collect();
            let omega = s.solve(&segs);
            assert!(omega >= prev - 1e-9, "not monotone at n={n}");
            prev = omega;
        }
        assert!(
            prev > 60.0 * 2.0,
            "12 hungry threads should be heavily contended: {prev}"
        );
    }

    #[test]
    fn traffic_never_exceeds_peak() {
        let s = solver();
        for n in [1usize, 2, 4, 8, 16, 32] {
            let segs: Vec<_> = (0..n).map(|_| (0.0, 1_000.0)).collect();
            let omega = s.solve(&segs);
            let traffic = s.traffic_at(&segs, omega);
            assert!(traffic <= 4.0 + 1e-6, "n={n} traffic={traffic}");
        }
    }

    #[test]
    fn hard_cap_without_queueing_term() {
        let mut cfg = MachineConfig::westmere_scaled();
        cfg.dram_bytes_per_cycle = 1.0;
        cfg.dram_base_stall = 60.0;
        cfg.queue_kappa = 0.0;
        let s = MemSolver::new(&cfg);
        // One all-memory segment alone demands 64/60 > 1 byte/cycle.
        let omega = s.solve(&[(0.0, 100.0)]);
        let traffic = s.traffic_at(&[(0.0, 100.0)], omega);
        assert!((traffic - 1.0).abs() < 1e-6, "traffic {traffic}");
        assert!(omega > 60.0);
    }

    #[test]
    fn stretch_is_one_for_pure_cpu() {
        let s = solver();
        assert_eq!(s.stretch(1000.0, 0.0, 500.0), 1.0);
    }

    #[test]
    fn stretch_scales_with_memory_share() {
        let s = solver();
        let omega = 120.0; // doubled stall
                           // All-memory segment: stretch = 2.
        assert!((s.stretch(0.0, 100.0, omega) - 2.0).abs() < 1e-12);
        // Half-memory segment stretches less.
        let f = s.stretch(6000.0, 100.0, omega);
        assert!(f > 1.0 && f < 2.0);
    }
}
