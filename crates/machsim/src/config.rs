//! Machine configuration.

use serde::{Deserialize, Serialize};

/// Static parameters of the simulated machine and its operating system.
///
/// The defaults model a scaled-down version of the paper's testbed: a
/// 12-core two-socket Westmere Xeon at 2.8 GHz with hardware prefetchers
/// disabled (§VII-A). Scaling notes live in `DESIGN.md` §6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of physical cores (SMT is out of scope, Assumption 3c).
    pub cores: u32,
    /// Core frequency in GHz; used only to convert cycles ↔ MB/s.
    pub freq_ghz: f64,
    /// OS scheduling quantum in cycles (preemptive round-robin).
    pub quantum_cycles: u64,
    /// Cost charged to a core when it switches between distinct threads.
    pub context_switch_cycles: u64,
    /// Cache line size in bytes (one LLC miss moves one line).
    pub line_bytes: u64,
    /// Peak DRAM bandwidth in bytes per cycle (all cores combined).
    pub dram_bytes_per_cycle: f64,
    /// Uncontended CPU stall per LLC miss, in cycles (the model's ω at low
    /// traffic).
    pub dram_base_stall: f64,
    /// Strength of the queueing-delay term: stall grows by
    /// `1 + κ·u²/(1-u)` at DRAM utilisation `u`.
    pub queue_kappa: f64,
}

impl MachineConfig {
    /// The scaled Westmere-like reference machine used throughout the
    /// experiments: 12 cores, 2.8 GHz.
    ///
    /// `dram_bytes_per_cycle = 7.5` ≈ 21 GB/s peak — one memory-hungry
    /// thread achieves roughly 1/7 of peak (line/stall ≈ 64/60 ≈ 1.07 B/cy),
    /// so bandwidth saturates around 6-8 hungry threads, matching the
    /// qualitative saturation points of the paper's Fig. 2/Fig. 12.
    pub fn westmere_scaled() -> Self {
        MachineConfig {
            cores: 12,
            freq_ghz: 2.8,
            quantum_cycles: 1_000_000,
            context_switch_cycles: 2_000,
            line_bytes: 64,
            dram_bytes_per_cycle: 7.5,
            dram_base_stall: 60.0,
            queue_kappa: 0.6,
        }
    }

    /// A small machine for unit tests: `n` cores, tiny quantum, zero
    /// context-switch cost, effectively unlimited memory bandwidth.
    pub fn small(n: u32) -> Self {
        MachineConfig {
            cores: n,
            freq_ghz: 1.0,
            quantum_cycles: 10_000,
            context_switch_cycles: 0,
            line_bytes: 64,
            dram_bytes_per_cycle: 1e12,
            dram_base_stall: 60.0,
            queue_kappa: 0.0,
        }
    }

    /// Same machine with a different core count (for speedup sweeps the
    /// OS/memory parameters must stay fixed).
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores = cores;
        self
    }

    /// Convert a traffic level in bytes/cycle to MB/s on this machine.
    pub fn bytes_per_cycle_to_mbps(&self, bpc: f64) -> f64 {
        // bytes/cycle × cycles/sec = bytes/sec; ÷ 1e6 = MB/s.
        bpc * self.freq_ghz * 1e9 / 1e6
    }

    /// Convert MB/s to bytes/cycle on this machine.
    pub fn mbps_to_bytes_per_cycle(&self, mbps: f64) -> f64 {
        mbps * 1e6 / (self.freq_ghz * 1e9)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::westmere_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_conversions_round_trip() {
        let cfg = MachineConfig::westmere_scaled();
        let mbps = cfg.bytes_per_cycle_to_mbps(1.0);
        assert!((mbps - 2800.0).abs() < 1e-9);
        let back = cfg.mbps_to_bytes_per_cycle(mbps);
        assert!((back - 1.0).abs() < 1e-12);
    }

    #[test]
    fn with_cores_only_changes_cores() {
        let a = MachineConfig::westmere_scaled();
        let b = a.with_cores(4);
        assert_eq!(b.cores, 4);
        assert_eq!(a.dram_bytes_per_cycle, b.dram_bytes_per_cycle);
        assert_eq!(a.quantum_cycles, b.quantum_cycles);
    }
}
