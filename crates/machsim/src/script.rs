//! Data-driven thread bodies: a `ScriptBody` executes a fixed list of
//! operations, which is exactly what tests and the Ψ/Φ calibration
//! microbenchmark (paper §V-D) need.

use crate::sync::{BarrierId, SimLockId};
use crate::thread::{Action, Env, ThreadBody, ThreadId, WorkPacket};

/// One scripted operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScriptOp {
    /// Run a compute packet.
    Compute(WorkPacket),
    /// Acquire a mutex.
    Acquire(SimLockId),
    /// Release a mutex.
    Release(SimLockId),
    /// Arrive at a barrier.
    Barrier(BarrierId),
    /// Park until unparked.
    Park,
    /// Unpark a specific thread.
    Unpark(ThreadId),
    /// Yield the core.
    Yield,
}

/// A thread body executing its ops in order, then exiting.
#[derive(Debug, Clone)]
pub struct ScriptBody {
    ops: Vec<ScriptOp>,
    pc: usize,
}

impl ScriptBody {
    /// Build from an op list.
    pub fn new(ops: Vec<ScriptOp>) -> Self {
        ScriptBody { ops, pc: 0 }
    }

    /// A body that repeats `op` a number of times (handy for traffic
    /// generators).
    pub fn repeated(op: ScriptOp, times: usize) -> Self {
        ScriptBody::new(vec![op; times])
    }
}

impl ThreadBody for ScriptBody {
    fn step(&mut self, env: &mut dyn Env) -> Action {
        loop {
            let Some(op) = self.ops.get(self.pc).copied() else {
                return Action::Exit;
            };
            self.pc += 1;
            match op {
                ScriptOp::Compute(p) => return Action::Compute(p),
                ScriptOp::Acquire(l) => return Action::Acquire(l),
                ScriptOp::Release(l) => return Action::Release(l),
                ScriptOp::Barrier(b) => return Action::Barrier(b),
                ScriptOp::Park => return Action::Park,
                ScriptOp::Yield => return Action::Yield,
                ScriptOp::Unpark(t) => {
                    env.unpark(t);
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::machine::Machine;

    #[test]
    fn script_runs_to_exit() {
        let mut m = Machine::new(MachineConfig::small(1));
        m.spawn(ScriptBody::new(vec![
            ScriptOp::Compute(WorkPacket::cpu(100)),
            ScriptOp::Compute(WorkPacket::cpu(50)),
        ]));
        let stats = m.run().unwrap();
        assert_eq!(stats.elapsed_cycles, 150);
        assert_eq!(stats.threads_spawned, 1);
    }

    #[test]
    fn repeated_builder() {
        let body = ScriptBody::repeated(ScriptOp::Yield, 3);
        assert_eq!(body.ops.len(), 3);
    }
}
