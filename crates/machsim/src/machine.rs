//! The discrete-event engine: cores, OS scheduler, and time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use crate::config::MachineConfig;
use crate::mem::MemSolver;
use crate::stats::{RunStats, ThreadStats};
use crate::sync::{BarrierId, BarrierState, LockState, ParkState, SimLockId};
use crate::thread::{Action, Env, ThreadBody, ThreadId};

/// Record an event on the machine's attached recorder, timestamped with
/// the current virtual time. Expands to nothing without the `obs`
/// feature, so call sites carry zero cost in untraced builds.
#[cfg(feature = "obs")]
macro_rules! obs {
    ($m:expr, $($kind:tt)+) => {
        if let Some(h) = $m.obs.as_ref() {
            let t = $m.now;
            h.record(t, prophet_obs::EventKind::$($kind)+);
        }
    };
}

#[cfg(not(feature = "obs"))]
macro_rules! obs {
    ($m:expr, $($kind:tt)+) => {};
}

/// Errors terminating a run abnormally.
///
/// Serializable so the serve daemon's unified error type can carry a
/// run failure across the wire inside an error body.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RunError {
    /// No runnable thread and no pending event, but threads remain alive.
    Deadlock {
        /// Simulated time of detection.
        at: u64,
        /// Threads still blocked.
        blocked: Vec<ThreadId>,
    },
    /// A thread body performed too many instantaneous actions in a row
    /// (runaway zero-time loop — a bug in the thread body).
    RunawayThread {
        /// The offending thread.
        thread: ThreadId,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { at, blocked } => {
                write!(
                    f,
                    "deadlock at cycle {at}: {} thread(s) blocked forever",
                    blocked.len()
                )
            }
            RunError::RunawayThread { thread } => {
                write!(
                    f,
                    "thread {:?} performed too many zero-time actions",
                    thread
                )
            }
        }
    }
}

impl std::error::Error for RunError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Ready,
    Running(usize),
    Blocked,
    Done,
}

/// Progress of a preemptible compute packet.
#[derive(Debug, Clone, Copy)]
struct PacketProgress {
    /// Pure CPU cycles of the whole packet (composition for the solver).
    c: f64,
    /// LLC misses of the whole packet.
    m: f64,
    /// Baseline-equivalent cycles remaining (scale: duration at ω₀).
    remaining: f64,
    /// Baseline-equivalent total (for DRAM byte apportioning).
    baseline_total: f64,
    /// Current stretch factor (≥ 1).
    stretch: f64,
}

struct ThreadSlot {
    body: Option<Box<dyn ThreadBody>>,
    state: TState,
    packet: Option<PacketProgress>,
    park: ParkState,
    stats: ThreadStats,
    /// Fractional DRAM bytes not yet credited (keeps totals exact across
    /// many settle boundaries).
    dram_carry: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Core {
    running: Option<ThreadId>,
    last_thread: Option<ThreadId>,
    /// When the current thread was dispatched (for trace spans).
    running_since: u64,
    /// Invalidates Quantum events when the running thread changes.
    run_gen: u64,
    /// Invalidates PacketDone events when rates are recomputed.
    rate_gen: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    PacketDone { core: usize, gen: u64 },
    Quantum { core: usize, gen: u64 },
}

/// Safety valve: max instantaneous actions a body may take consecutively.
const MAX_ZERO_TIME_STEPS: u32 = 1_000_000;

/// ω-cache entry cap: one entry per distinct running-segment composition;
/// real programs cycle through a handful, so the cap only guards against
/// adversarial churn. On overflow the cache is dropped wholesale (it is
/// pure memoization — correctness never depends on its contents).
const OMEGA_CACHE_CAP: usize = 1024;

/// The simulated machine. Spawn initial threads with [`Machine::spawn`],
/// then call [`Machine::run`] to completion.
pub struct Machine {
    cfg: MachineConfig,
    solver: MemSolver,
    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, Event)>>,
    threads: Vec<ThreadSlot>,
    ready: VecDeque<ThreadId>,
    cores: Vec<Core>,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    live_threads: u32,
    peak_live: u32,
    stats: RunStats,
    /// Set when the running-packet membership changed and rates must be
    /// recomputed before the next event is consumed.
    rates_dirty: bool,
    /// Pending context-switch cycles to fold into the next packet per core.
    pending_cs: Vec<u64>,
    /// Memoized ω fixed points, keyed by the *ordered* bit-exact `(C, M)`
    /// running-segment sequence. The key must be ordered, not a sorted
    /// multiset: the solver sums per-segment f64 traffic in core order,
    /// so a permuted composition may solve to a different low bit and
    /// multiset keying would leak it across orderings (DESIGN.md §12).
    omega_cache: HashMap<Vec<(u64, u64)>, f64>,
    /// Scratch for building ω-cache keys without per-event allocation.
    omega_key: Vec<(u64, u64)>,
    /// Scratch for the running `(C, M)` segment list.
    seg_scratch: Vec<(f64, f64)>,
    /// ω solves avoided via the cache (observability; survives `reset`).
    omega_cache_hits: u64,
    /// Invalidated events dropped — popped-and-skipped or swept in bulk
    /// (observability; survives `reset`).
    stale_events_skipped: u64,
    /// Execution timeline, recorded when tracing is enabled.
    trace: Option<crate::trace::Timeline>,
    /// Structured event recorder, when attached.
    #[cfg(feature = "obs")]
    obs: Option<prophet_obs::ObsHandle>,
}

impl Machine {
    /// A fresh machine with no threads.
    pub fn new(cfg: MachineConfig) -> Self {
        let solver = MemSolver::new(&cfg);
        Machine {
            solver,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            threads: Vec::new(),
            ready: VecDeque::new(),
            cores: vec![Core::default(); cfg.cores as usize],
            locks: Vec::new(),
            barriers: Vec::new(),
            live_threads: 0,
            peak_live: 0,
            stats: RunStats::default(),
            rates_dirty: false,
            pending_cs: vec![0; cfg.cores as usize],
            omega_cache: HashMap::new(),
            omega_key: Vec::new(),
            seg_scratch: Vec::new(),
            omega_cache_hits: 0,
            stale_events_skipped: 0,
            trace: None,
            #[cfg(feature = "obs")]
            obs: None,
            cfg,
        }
    }

    /// Attach a structured-event recorder; every scheduler, lock,
    /// barrier and DRAM-rate transition is recorded against it from now
    /// on. Clone the handle to share the same recorder with runtimes.
    #[cfg(feature = "obs")]
    pub fn attach_obs(&mut self, obs: prophet_obs::ObsHandle) {
        self.obs = Some(obs);
    }

    /// The attached recorder, if any.
    #[cfg(feature = "obs")]
    pub fn obs_handle(&self) -> Option<prophet_obs::ObsHandle> {
        self.obs.clone()
    }

    /// Record per-core execution spans for this run (see
    /// [`crate::trace::Timeline`]); retrieve them from
    /// [`crate::RunStats::timeline`].
    pub fn enable_tracing(&mut self) {
        self.trace = Some(crate::trace::Timeline::default());
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Spawn a thread before or during the run; it becomes ready.
    pub fn spawn(&mut self, body: impl ThreadBody + 'static) -> ThreadId {
        self.spawn_boxed(Box::new(body))
    }

    /// Spawn from an already-boxed body.
    pub fn spawn_boxed(&mut self, body: Box<dyn ThreadBody>) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(ThreadSlot {
            body: Some(body),
            state: TState::Ready,
            packet: None,
            park: ParkState::default(),
            stats: ThreadStats {
                spawned_at: self.now,
                ..Default::default()
            },
            dram_carry: 0.0,
        });
        self.ready.push_back(id);
        self.live_threads += 1;
        self.peak_live = self.peak_live.max(self.live_threads);
        self.stats.threads_spawned += 1;
        obs!(self, ThreadSpawn { thread: id.0 });
        id
    }

    /// Create a mutex (pre-run convenience; bodies use [`Env::create_lock`]).
    pub fn create_lock(&mut self) -> SimLockId {
        let id = SimLockId(self.locks.len() as u32);
        self.locks.push(LockState::default());
        id
    }

    /// Create a barrier for `parties` participants.
    pub fn create_barrier(&mut self, parties: u32) -> BarrierId {
        let id = BarrierId(self.barriers.len() as u32);
        self.barriers.push(BarrierState::new(parties));
        id
    }

    fn push_event(&mut self, at: u64, ev: Event) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, ev)));
    }

    /// Advance simulated time to `t`, progressing all running packets.
    fn settle(&mut self, t: u64) {
        debug_assert!(t >= self.now);
        let elapsed = (t - self.now) as f64;
        if elapsed > 0.0 {
            for core in 0..self.cores.len() {
                let Some(tid) = self.cores[core].running else {
                    continue;
                };
                let slot = &mut self.threads[tid.0 as usize];
                slot.stats.busy_cycles += t - self.now;
                if let Some(p) = slot.packet.as_mut() {
                    let progress = elapsed / p.stretch;
                    let before = p.remaining;
                    p.remaining = (p.remaining - progress).max(0.0);
                    // Apportion DRAM bytes by baseline progress, carrying
                    // the fractional remainder so totals stay exact.
                    if p.m > 0.0 && p.baseline_total > 0.0 {
                        let frac = (before - p.remaining) / p.baseline_total;
                        let exact = frac * p.m * self.cfg.line_bytes as f64 + slot.dram_carry;
                        let bytes = exact.floor() as u64;
                        slot.dram_carry = exact - bytes as f64;
                        slot.stats.dram_bytes += bytes;
                        self.stats.dram_bytes += bytes;
                    }
                }
            }
            self.stats.busy_cycles +=
                (t - self.now) * self.cores.iter().filter(|c| c.running.is_some()).count() as u64;
        }
        self.now = t;
    }

    /// Recompute the shared stall, each packet's stretch, and reschedule
    /// every completion event. Called whenever membership changes.
    ///
    /// The ω fixed point depends only on the running `(C, M)` segment
    /// composition, which repeats heavily across membership changes (the
    /// same team phases in and out of the same packets), so the solve is
    /// memoized on the exact ordered composition. A cache hit returns the
    /// bit-identical ω the solver would have produced — `MemSolver::solve`
    /// is a pure function of its input.
    fn recompute_rates(&mut self) {
        let mut segs = std::mem::take(&mut self.seg_scratch);
        segs.clear();
        segs.extend(
            self.cores
                .iter()
                .filter_map(|c| c.running)
                .filter_map(|tid| self.threads[tid.0 as usize].packet.map(|p| (p.c, p.m))),
        );
        self.omega_key.clear();
        self.omega_key
            .extend(segs.iter().map(|&(c, m)| (c.to_bits(), m.to_bits())));
        let omega = match self.omega_cache.get(self.omega_key.as_slice()) {
            Some(&w) => {
                self.omega_cache_hits += 1;
                w
            }
            None => {
                let w = self.solver.solve(&segs);
                if self.omega_cache.len() >= OMEGA_CACHE_CAP {
                    self.omega_cache.clear();
                }
                self.omega_cache.insert(self.omega_key.clone(), w);
                w
            }
        };
        obs!(
            self,
            DramRate {
                active: segs.iter().filter(|&&(_, m)| m > 0.0).count() as u32,
                omega_milli: (omega * 1000.0).round() as u64,
            }
        );
        for core in 0..self.cores.len() {
            let Some(tid) = self.cores[core].running else {
                continue;
            };
            let Some(p) = self.threads[tid.0 as usize].packet.as_mut() else {
                continue;
            };
            p.stretch = self.solver.stretch(p.c, p.m, omega);
            let eta = (p.remaining * p.stretch).ceil().max(0.0) as u64;
            self.cores[core].rate_gen += 1;
            let gen = self.cores[core].rate_gen;
            let at = self.now + eta;
            self.push_event(at, Event::PacketDone { core, gen });
        }
        self.rates_dirty = false;
        self.seg_scratch = segs;
        // Each reschedule invalidates the cores' previous completion
        // events, so the heap accretes stale entries; rebuild it once the
        // dead weight dominates (live events are bounded by 2 per core).
        if self.events.len() > 64.max(8 * self.cores.len()) {
            self.sweep_stale_events();
        }
    }

    /// Drop every invalidated event from the heap in one pass. Generation
    /// counters only ever increase, so an event that is stale now can
    /// never become valid again — dropping it is equivalent to the
    /// pop-and-skip it would otherwise get. Rebuilding the heap preserves
    /// pop order exactly: `(time, seq, event)` keys are unique (`seq` is
    /// a strictly increasing tie-break), so the surviving set pops in the
    /// same total order from any heap shape.
    fn sweep_stale_events(&mut self) {
        let before = self.events.len();
        let mut vec = std::mem::take(&mut self.events).into_vec();
        vec.retain(|&Reverse((_, _, ev))| match ev {
            Event::PacketDone { core, gen } => self.cores[core].rate_gen == gen,
            Event::Quantum { core, gen } => self.cores[core].run_gen == gen,
        });
        self.stale_events_skipped += (before - vec.len()) as u64;
        self.events = BinaryHeap::from(vec);
    }

    /// Fill idle cores from the ready queue, driving each dispatched thread.
    fn dispatch_all(&mut self) -> Result<(), RunError> {
        while let Some(core) = self.cores.iter().position(|c| c.running.is_none()) {
            let Some(tid) = self.ready.pop_front() else {
                break;
            };
            debug_assert_eq!(self.threads[tid.0 as usize].state, TState::Ready);
            // Charge a context switch when the core last ran someone else.
            if self.cores[core].last_thread != Some(tid) && self.cores[core].last_thread.is_some() {
                self.stats.context_switches += 1;
                self.pending_cs[core] = self.cfg.context_switch_cycles;
            }
            self.cores[core].running = Some(tid);
            self.cores[core].last_thread = Some(tid);
            self.cores[core].running_since = self.now;
            self.cores[core].run_gen += 1;
            self.threads[tid.0 as usize].state = TState::Running(core);
            obs!(
                self,
                ThreadDispatch {
                    core: core as u32,
                    thread: tid.0
                }
            );
            // Resuming a preempted packet?
            if self.threads[tid.0 as usize].packet.is_some() {
                // Fold the context-switch cost into the resumed packet.
                let cs = std::mem::take(&mut self.pending_cs[core]) as f64;
                if cs > 0.0 {
                    let p = self.threads[tid.0 as usize]
                        .packet
                        .as_mut()
                        .expect("checked");
                    p.c += cs;
                    p.remaining += cs;
                    p.baseline_total += cs;
                }
                self.arm_quantum(core);
                self.rates_dirty = true;
            } else {
                self.drive(tid, core)?;
            }
        }
        Ok(())
    }

    fn arm_quantum(&mut self, core: usize) {
        let gen = self.cores[core].run_gen;
        let at = self.now + self.cfg.quantum_cycles;
        self.push_event(at, Event::Quantum { core, gen });
    }

    /// Step the body of a running thread until it performs a time-consuming
    /// action or leaves the core.
    fn drive(&mut self, tid: ThreadId, core: usize) -> Result<(), RunError> {
        debug_assert_eq!(self.cores[core].running, Some(tid));
        let mut zero_steps = 0u32;
        loop {
            zero_steps += 1;
            if zero_steps > MAX_ZERO_TIME_STEPS {
                return Err(RunError::RunawayThread { thread: tid });
            }
            let mut body = self.threads[tid.0 as usize]
                .body
                .take()
                .expect("running thread must have a body");
            let action = {
                let mut env = MachineEnv { m: self, me: tid };
                body.step(&mut env)
            };
            self.threads[tid.0 as usize].body = Some(body);
            match action {
                Action::Compute(p) if p.is_empty() && self.pending_cs[core] == 0 => continue,
                Action::Compute(p) => {
                    let cs = std::mem::take(&mut self.pending_cs[core]);
                    let c = p.compute_cycles as f64 + cs as f64;
                    let m = p.llc_misses as f64;
                    let baseline = c + m * self.solver.omega0();
                    self.threads[tid.0 as usize].packet = Some(PacketProgress {
                        c,
                        m,
                        remaining: baseline,
                        baseline_total: baseline,
                        stretch: 1.0,
                    });
                    self.arm_quantum(core);
                    self.rates_dirty = true;
                    return Ok(());
                }
                Action::Acquire(l) => {
                    if self.locks[l.0 as usize].acquire(tid) {
                        obs!(
                            self,
                            LockAcquire {
                                lock: l.0,
                                thread: tid.0
                            }
                        );
                        continue;
                    }
                    obs!(
                        self,
                        LockWait {
                            lock: l.0,
                            thread: tid.0
                        }
                    );
                    self.block(tid, core);
                    return Ok(());
                }
                Action::Release(l) => {
                    obs!(
                        self,
                        LockRelease {
                            lock: l.0,
                            thread: tid.0
                        }
                    );
                    if let Some(next) = self.locks[l.0 as usize].release(tid) {
                        // FIFO hand-off: ownership transfers at release.
                        obs!(
                            self,
                            LockAcquire {
                                lock: l.0,
                                thread: next.0
                            }
                        );
                        self.make_ready(next);
                    }
                    continue;
                }
                Action::Barrier(b) => {
                    obs!(
                        self,
                        BarrierEnter {
                            barrier: b.0,
                            thread: tid.0
                        }
                    );
                    match self.barriers[b.0 as usize].arrive(tid) {
                        Some(woken) => {
                            obs!(
                                self,
                                BarrierRelease {
                                    barrier: b.0,
                                    woken: woken.len() as u32,
                                }
                            );
                            for w in woken {
                                self.make_ready(w);
                            }
                            continue;
                        }
                        None => {
                            self.block(tid, core);
                            return Ok(());
                        }
                    }
                }
                Action::Park => {
                    let park = &mut self.threads[tid.0 as usize].park;
                    if park.permit {
                        park.permit = false;
                        continue;
                    }
                    park.parked = true;
                    self.block(tid, core);
                    return Ok(());
                }
                Action::Yield => {
                    obs!(
                        self,
                        ThreadYield {
                            core: core as u32,
                            thread: tid.0
                        }
                    );
                    self.threads[tid.0 as usize].state = TState::Ready;
                    self.ready.push_back(tid);
                    self.free_core(core);
                    return Ok(());
                }
                Action::Exit => {
                    obs!(
                        self,
                        ThreadExit {
                            core: core as u32,
                            thread: tid.0
                        }
                    );
                    let slot = &mut self.threads[tid.0 as usize];
                    slot.state = TState::Done;
                    slot.body = None;
                    slot.stats.finished_at = self.now;
                    self.live_threads -= 1;
                    self.free_core(core);
                    return Ok(());
                }
            }
        }
    }

    fn block(&mut self, tid: ThreadId, core: usize) {
        obs!(
            self,
            ThreadBlock {
                core: core as u32,
                thread: tid.0
            }
        );
        self.threads[tid.0 as usize].state = TState::Blocked;
        self.free_core(core);
    }

    fn free_core(&mut self, core: usize) {
        if let (Some(trace), Some(tid)) = (self.trace.as_mut(), self.cores[core].running) {
            trace.push(core as u32, tid, self.cores[core].running_since, self.now);
        }
        self.cores[core].running = None;
        self.cores[core].run_gen += 1;
        // Invalidate any in-flight completion for the departed packet; a
        // resumed packet gets a fresh completion from recompute_rates.
        self.cores[core].rate_gen += 1;
        self.rates_dirty = true;
    }

    fn make_ready(&mut self, tid: ThreadId) {
        let slot = &mut self.threads[tid.0 as usize];
        debug_assert_eq!(
            slot.state,
            TState::Blocked,
            "make_ready on non-blocked thread"
        );
        slot.state = TState::Ready;
        self.ready.push_back(tid);
    }

    /// Run until every thread has exited. Returns run statistics.
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        self.dispatch_all()?;
        if self.rates_dirty {
            self.recompute_rates();
        }
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            // Drop stale events.
            let valid = match ev {
                Event::PacketDone { core, gen } => self.cores[core].rate_gen == gen,
                Event::Quantum { core, gen } => self.cores[core].run_gen == gen,
            };
            if !valid {
                self.stale_events_skipped += 1;
                continue;
            }
            self.settle(t);
            match ev {
                Event::PacketDone { core, .. } => {
                    let tid = self.cores[core].running.expect("completion on idle core");
                    let slot = &mut self.threads[tid.0 as usize];
                    debug_assert!(
                        slot.packet.is_some_and(|p| p.remaining <= 1.0),
                        "completion fired with work remaining"
                    );
                    slot.packet = None;
                    self.rates_dirty = true;
                    self.drive(tid, core)?;
                }
                Event::Quantum { core, .. } => {
                    let tid = self.cores[core].running.expect("quantum on idle core");
                    if self.ready.is_empty() {
                        // Nobody to switch to: extend the quantum.
                        self.arm_quantum(core);
                    } else {
                        self.stats.preemptions += 1;
                        obs!(
                            self,
                            ThreadPreempt {
                                core: core as u32,
                                thread: tid.0
                            }
                        );
                        self.threads[tid.0 as usize].state = TState::Ready;
                        self.ready.push_back(tid);
                        self.free_core(core);
                    }
                }
            }
            self.dispatch_all()?;
            if self.rates_dirty {
                self.recompute_rates();
            }
        }

        if self.live_threads > 0 {
            let blocked: Vec<ThreadId> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| !matches!(s.state, TState::Done))
                .map(|(i, _)| ThreadId(i as u32))
                .collect();
            return Err(RunError::Deadlock {
                at: self.now,
                blocked,
            });
        }

        self.stats.elapsed_cycles = self.now;
        self.stats.peak_live_threads = self.peak_live;
        self.stats.lock_acquisitions = self.locks.iter().map(|s| s.acquisitions).sum();
        self.stats.lock_contended = self.locks.iter().map(|s| s.contended).sum();
        self.stats.threads = self.threads.iter().map(|s| s.stats).collect();
        // Hand the run's accounting out by move: the timeline (only
        // captured when tracing was requested) and the stats vector
        // transfer ownership instead of being cloned per run — this is
        // the sweep engine's hot finish path.
        let mut stats = std::mem::take(&mut self.stats);
        stats.timeline = self.trace.take();
        Ok(stats)
    }

    /// Return the machine to its just-constructed state while keeping
    /// every internal allocation (event heap, ready queue, thread/lock
    /// tables) for reuse. Emulators that measure many short programs on
    /// "a fresh machine" call this between measurements instead of
    /// constructing — and re-heap-allocating — a new [`Machine`].
    ///
    /// The attached obs recorder (when the `obs` feature is on) is kept;
    /// tracing, if it was enabled, stays enabled with an empty timeline.
    pub fn reset(&mut self) {
        let tracing = self.trace.is_some();
        self.now = 0;
        self.seq = 0;
        self.events.clear();
        self.threads.clear();
        self.ready.clear();
        for core in self.cores.iter_mut() {
            *core = Core::default();
        }
        self.locks.clear();
        self.barriers.clear();
        self.live_threads = 0;
        self.peak_live = 0;
        self.stats = RunStats::default();
        self.rates_dirty = false;
        for cs in self.pending_cs.iter_mut() {
            *cs = 0;
        }
        self.trace = if tracing {
            Some(crate::trace::Timeline::default())
        } else {
            None
        };
        // Reuse audit: everything that could leak one run's scheduling
        // into the next must be gone. (The ω cache and the observability
        // counters deliberately survive — the cache is pure memoization
        // keyed on solver inputs, and the counters are cumulative.)
        debug_assert!(self.events.is_empty(), "event heap not cleared");
        debug_assert!(self.ready.is_empty(), "ready queue not cleared");
        debug_assert!(self.threads.is_empty(), "thread table not cleared");
        debug_assert_eq!(self.seq, 0, "event sequence not reset");
        debug_assert!(!self.rates_dirty, "solver state not settled");
        debug_assert!(
            self.cores
                .iter()
                .all(|c| c.running.is_none() && c.rate_gen == 0 && c.run_gen == 0),
            "packet generation counters not cleared"
        );
        debug_assert!(
            self.pending_cs.iter().all(|&cs| cs == 0),
            "pending context switches not cleared"
        );
    }

    /// ω-solver fixed-point solves avoided via the composition cache.
    /// Cumulative across [`Machine::reset`].
    pub fn omega_cache_hits(&self) -> u64 {
        self.omega_cache_hits
    }

    /// Invalidated heap events dropped (popped-and-skipped or bulk-swept).
    /// Cumulative across [`Machine::reset`].
    pub fn stale_events_skipped(&self) -> u64 {
        self.stale_events_skipped
    }

    /// Publish the machine's observability counters into a metrics
    /// registry under the `machsim.*` names.
    #[cfg(feature = "obs")]
    pub fn publish_metrics(&self, reg: &mut prophet_obs::MetricsRegistry) {
        reg.inc("machsim.omega_cache_hits", self.omega_cache_hits);
        reg.inc("machsim.stale_events_skipped", self.stale_events_skipped);
    }
}

/// The [`Env`] implementation handed to thread bodies.
struct MachineEnv<'a> {
    m: &'a mut Machine,
    me: ThreadId,
}

impl Env for MachineEnv<'_> {
    fn now(&self) -> u64 {
        self.m.now
    }

    fn me(&self) -> ThreadId {
        self.me
    }

    fn spawn(&mut self, body: Box<dyn ThreadBody>) -> ThreadId {
        self.m.spawn_boxed(body)
    }

    fn unpark(&mut self, thread: ThreadId) {
        let slot = &mut self.m.threads[thread.0 as usize];
        if slot.park.parked {
            slot.park.parked = false;
            obs!(self.m, ThreadUnpark { thread: thread.0 });
            self.m.make_ready(thread);
        } else {
            slot.park.permit = true;
        }
    }

    fn create_lock(&mut self) -> SimLockId {
        self.m.create_lock()
    }

    fn create_barrier(&mut self, parties: u32) -> BarrierId {
        self.m.create_barrier(parties)
    }

    fn cores(&self) -> u32 {
        self.m.cfg.cores
    }

    #[cfg(feature = "obs")]
    fn obs(&self) -> Option<prophet_obs::ObsHandle> {
        self.m.obs.clone()
    }
}
