//! Kernel-level synchronisation objects: FIFO mutexes, counting barriers,
//! and park permits.

use std::collections::VecDeque;

use crate::thread::ThreadId;

/// Identifier of a simulated mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimLockId(pub u32);

/// Identifier of a simulated barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);

/// A FIFO mutex with direct ownership hand-off: on release, the longest
/// waiter becomes the owner and is made ready (no barging), which matches
/// the fairness the paper's emulators assume for critical sections.
#[derive(Debug, Default)]
pub struct LockState {
    /// Current owner.
    pub owner: Option<ThreadId>,
    /// Blocked acquirers in arrival order.
    pub waiters: VecDeque<ThreadId>,
    /// Total times this lock was acquired (stats).
    pub acquisitions: u64,
    /// Total acquisitions that had to wait (stats).
    pub contended: u64,
}

impl LockState {
    /// Attempt acquisition by `t`: returns `true` when the lock was free
    /// and is now owned by `t`; otherwise `t` is queued.
    pub fn acquire(&mut self, t: ThreadId) -> bool {
        match self.owner {
            None => {
                self.owner = Some(t);
                self.acquisitions += 1;
                true
            }
            Some(owner) => {
                debug_assert_ne!(owner, t, "recursive lock acquisition");
                self.waiters.push_back(t);
                self.contended += 1;
                false
            }
        }
    }

    /// Release by the owner; returns the thread that inherits ownership,
    /// if any. Panics (debug) when released by a non-owner.
    pub fn release(&mut self, t: ThreadId) -> Option<ThreadId> {
        debug_assert_eq!(self.owner, Some(t), "release by non-owner");
        match self.waiters.pop_front() {
            Some(next) => {
                self.owner = Some(next);
                self.acquisitions += 1;
                Some(next)
            }
            None => {
                self.owner = None;
                None
            }
        }
    }
}

/// A counting barrier: the `parties`-th arrival releases everyone.
#[derive(Debug)]
pub struct BarrierState {
    /// Number of participants.
    pub parties: u32,
    /// Blocked arrivals so far.
    pub waiting: Vec<ThreadId>,
}

impl BarrierState {
    /// New barrier for `parties` threads.
    pub fn new(parties: u32) -> Self {
        BarrierState {
            parties,
            waiting: Vec::new(),
        }
    }

    /// Thread `t` arrives. Returns `Some(threads_to_wake)` when `t` was the
    /// last arrival (the woken list does NOT include `t`, which proceeds
    /// immediately); `None` when `t` must block.
    pub fn arrive(&mut self, t: ThreadId) -> Option<Vec<ThreadId>> {
        debug_assert!(!self.waiting.contains(&t), "double arrival at barrier");
        if self.waiting.len() as u32 + 1 == self.parties {
            let woken = std::mem::take(&mut self.waiting);
            Some(woken)
        } else {
            self.waiting.push(t);
            None
        }
    }
}

/// Park/unpark permit state for one thread (like `std::thread::park`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ParkState {
    /// A pending unpark not yet consumed.
    pub permit: bool,
    /// The thread is currently blocked in `Park`.
    pub parked: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_fifo_handoff() {
        let mut l = LockState::default();
        assert!(l.acquire(ThreadId(1)));
        assert!(!l.acquire(ThreadId(2)));
        assert!(!l.acquire(ThreadId(3)));
        assert_eq!(l.release(ThreadId(1)), Some(ThreadId(2)));
        assert_eq!(l.owner, Some(ThreadId(2)));
        assert_eq!(l.release(ThreadId(2)), Some(ThreadId(3)));
        assert_eq!(l.release(ThreadId(3)), None);
        assert_eq!(l.owner, None);
        assert_eq!(l.acquisitions, 3);
        assert_eq!(l.contended, 2);
    }

    #[test]
    fn barrier_releases_on_last_arrival() {
        let mut b = BarrierState::new(3);
        assert_eq!(b.arrive(ThreadId(1)), None);
        assert_eq!(b.arrive(ThreadId(2)), None);
        let woken = b.arrive(ThreadId(3)).unwrap();
        assert_eq!(woken, vec![ThreadId(1), ThreadId(2)]);
        // Barrier is reusable after release.
        assert_eq!(b.arrive(ThreadId(1)), None);
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let mut b = BarrierState::new(1);
        assert_eq!(b.arrive(ThreadId(5)), Some(vec![]));
    }
}
