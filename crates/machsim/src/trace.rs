//! Execution timelines: optional per-core span recording plus an ASCII
//! Gantt renderer, for visualising schedules the way the paper's Fig. 5
//! draws them.

use serde::{Deserialize, Serialize};

use crate::thread::ThreadId;

/// One contiguous span of a thread occupying a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// The core.
    pub core: u32,
    /// The thread that ran.
    pub thread: ThreadId,
    /// Span start, cycles.
    pub start: u64,
    /// Span end, cycles.
    pub end: u64,
}

/// A whole run's spans, in completion order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Recorded spans.
    pub spans: Vec<Span>,
}

impl Timeline {
    /// Record a span (ignores zero-length spans).
    pub fn push(&mut self, core: u32, thread: ThreadId, start: u64, end: u64) {
        if end > start {
            self.spans.push(Span {
                core,
                thread,
                start,
                end,
            });
        }
    }

    /// End of the last span.
    pub fn horizon(&self) -> u64 {
        self.spans.iter().map(|s| s.end).max().unwrap_or(0)
    }

    /// Total busy cycles per thread.
    pub fn busy_of(&self, thread: ThreadId) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.thread == thread)
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Render an ASCII Gantt chart, one row per core, `width` characters
    /// across the time axis. Threads are labelled `0-9a-z` cyclically;
    /// idle time is `.`.
    pub fn render_gantt(&self, width: usize) -> String {
        let horizon = self.horizon().max(1);
        let cores = self.spans.iter().map(|s| s.core).max().map_or(0, |c| c + 1);
        let width = width.max(10);
        let glyph = |t: ThreadId| -> char {
            const G: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
            G[(t.0 as usize) % G.len()] as char
        };
        let mut out = String::new();
        for core in 0..cores {
            let mut row = vec!['.'; width];
            for s in self.spans.iter().filter(|s| s.core == core) {
                let a = (s.start as u128 * width as u128 / horizon as u128) as usize;
                let b =
                    ((s.end as u128 * width as u128).div_ceil(horizon as u128) as usize).min(width);
                for cell in row.iter_mut().take(b).skip(a) {
                    *cell = glyph(s.thread);
                }
            }
            out.push_str(&format!("cpu{core:<2} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "      0{:>width$}\n",
            format!("{horizon} cycles"),
            width = width - 1
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::default();
        t.push(0, ThreadId(0), 0, 50);
        t.push(1, ThreadId(1), 0, 30);
        t.push(1, ThreadId(2), 30, 100);
        t.push(0, ThreadId(0), 60, 100);
        t
    }

    #[test]
    fn horizon_and_busy() {
        let t = sample();
        assert_eq!(t.horizon(), 100);
        assert_eq!(t.busy_of(ThreadId(0)), 90);
        assert_eq!(t.busy_of(ThreadId(2)), 70);
    }

    #[test]
    fn zero_length_spans_dropped() {
        let mut t = Timeline::default();
        t.push(0, ThreadId(0), 5, 5);
        assert!(t.spans.is_empty());
    }

    #[test]
    fn gantt_renders_all_cores() {
        let g = sample().render_gantt(40);
        assert!(g.contains("cpu0"));
        assert!(g.contains("cpu1"));
        assert!(g.contains('0'));
        assert!(g.contains('2'));
        assert!(g.contains("100 cycles"));
        // cpu0 has an idle gap 50..60.
        let row0 = g.lines().next().unwrap();
        assert!(row0.contains('.'), "expected idle dots: {row0}");
    }

    #[test]
    fn empty_timeline_renders() {
        let g = Timeline::default().render_gantt(20);
        assert!(g.contains("cycles"));
    }
}
