//! A runtime-agnostic parallel-program IR.
//!
//! Both runtimes (`omp_rt`, `cilk_rt`), the ground-truth runner in
//! `workloads`, and the synthesizer in `synthemu` express parallelised
//! programs in this little language: a sequence of operations where a
//! parallel section carries its tasks, scheduling policy, and team size.
//! The fast-forward emulator shares the [`Schedule`]/[`Paradigm`]
//! vocabulary so predictions and ground truth mean the same thing.

use std::rc::Rc;

use crate::thread::WorkPacket;

/// Threading paradigm a section is parallelised with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// OpenMP-like: explicit teams, loop worksharing with a schedule.
    OpenMp,
    /// Cilk-like: work-stealing tasks (`cilk_for` / spawn-sync).
    CilkPlus,
    /// OpenMP 3.0 `task`: a worker pool around one central task queue.
    OmpTask,
}

impl Paradigm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Paradigm::OpenMp => "OpenMP",
            Paradigm::CilkPlus => "CilkPlus",
            Paradigm::OmpTask => "OmpTask",
        }
    }

    /// Parse a CLI/request spelling (`openmp` | `cilk` | `omptask`,
    /// case-insensitive; display names also accepted).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "openmp" => Some(Paradigm::OpenMp),
            "cilk" | "cilkplus" => Some(Paradigm::CilkPlus),
            "omptask" => Some(Paradigm::OmpTask),
            _ => None,
        }
    }
}

/// OpenMP loop-scheduling policy (paper Fig. 5 distinguishes
/// `(static,1)`, `(static)`, and `(dynamic,1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// `schedule(static[,chunk])`: `None` = contiguous block partition;
    /// `Some(c)` = round-robin chunks of `c` iterations.
    Static {
        /// Chunk size; `None` for the block partition.
        chunk: Option<u32>,
    },
    /// `schedule(dynamic,chunk)`: shared grab-counter.
    Dynamic {
        /// Iterations per grab.
        chunk: u32,
    },
    /// `schedule(guided,min)`: exponentially decreasing chunks.
    Guided {
        /// Minimum chunk size.
        min_chunk: u32,
    },
}

impl Schedule {
    /// `schedule(static,1)`.
    pub fn static1() -> Self {
        Schedule::Static { chunk: Some(1) }
    }

    /// `schedule(static)` (block partition).
    pub fn static_block() -> Self {
        Schedule::Static { chunk: None }
    }

    /// `schedule(dynamic,1)`.
    pub fn dynamic1() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }

    /// Parse a paper-style name (the inverse of [`Schedule::name`]):
    /// `static` | `static-N` | `dynamic-N` | `guided-N`. Returns `None`
    /// for anything else, including malformed chunk counts.
    pub fn parse(s: &str) -> Option<Self> {
        if s == "static" {
            return Some(Schedule::static_block());
        }
        if let Some(c) = s.strip_prefix("static-") {
            return c.parse().ok().map(|c| Schedule::Static { chunk: Some(c) });
        }
        if let Some(c) = s.strip_prefix("dynamic-") {
            return c.parse().ok().map(|chunk| Schedule::Dynamic { chunk });
        }
        if let Some(m) = s.strip_prefix("guided-") {
            return m
                .parse()
                .ok()
                .map(|min_chunk| Schedule::Guided { min_chunk });
        }
        None
    }

    /// Paper-style display name, e.g. `"static-1"`.
    pub fn name(&self) -> String {
        match self {
            Schedule::Static { chunk: None } => "static".to_string(),
            Schedule::Static { chunk: Some(c) } => format!("static-{c}"),
            Schedule::Dynamic { chunk } => format!("dynamic-{chunk}"),
            Schedule::Guided { min_chunk } => format!("guided-{min_chunk}"),
        }
    }
}

/// One operation in a task body or the main program.
#[derive(Debug, Clone, PartialEq)]
pub enum POp {
    /// Unprotected computation (a `U` node / FakeDelay).
    Work(WorkPacket),
    /// Computation under a user lock (an `L` node).
    Locked {
        /// User lock id (annotation `LOCK_BEGIN(id)`).
        lock: u32,
        /// The protected computation.
        work: WorkPacket,
    },
    /// A nested parallel section.
    Par(ParSection),
    /// A pipeline region (§VII-E extension): items stream through
    /// ordered stages, one stage-thread each.
    Pipe(PipeSection),
}

/// One stream item of a pipeline: its per-stage operation lists. Stage
/// ops may be `Work` or `Locked`; nested `Par`/`Pipe` inside a stage is
/// not supported by the runtimes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipeItem {
    /// Ops per stage, in stage order. All items of one pipeline must
    /// have the same stage count.
    pub stages: Vec<Vec<POp>>,
}

/// A pipeline region: one thread per stage, items processed in order.
#[derive(Debug, Clone, PartialEq)]
pub struct PipeSection {
    /// Stream items in order (Rc-shared for repeated items).
    pub items: Vec<Rc<PipeItem>>,
    /// Stage count (== `items[*].stages.len()`).
    pub stages: u32,
}

/// A task body: the ordered operations of one parallel task. Shared via
/// `Rc` so compressed trees stay compressed in the IR.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaskBody {
    /// Ordered operations.
    pub ops: Vec<POp>,
}

/// The ordered task list of a parallel section, stored run-length
/// encoded: adjacent repeats of the *same* `Rc<TaskBody>` are kept once
/// with a multiplicity. Building the IR from a compressed program tree
/// therefore costs O(runs), not O(trip count), while logical indexing
/// (`tasks[i]`), iteration, and `len()` still follow expanded order —
/// runtimes that replay every iteration are unchanged.
#[derive(Debug, Clone, Default)]
pub struct TaskList {
    /// `(body, count)` runs in logical order. Counts are nonzero and
    /// adjacent runs never share the same body pointer (canonical form).
    runs: Vec<(Rc<TaskBody>, u32)>,
    /// `ends[i]` = logical index one past run `i` (prefix sums).
    ends: Vec<usize>,
}

impl TaskList {
    /// Build from `(body, count)` runs; zero-count runs are dropped and
    /// adjacent runs of the same body pointer are coalesced so the
    /// canonical form is independent of how the caller grouped them.
    pub fn from_runs(runs: impl IntoIterator<Item = (Rc<TaskBody>, u32)>) -> Self {
        let mut out: Vec<(Rc<TaskBody>, u32)> = Vec::new();
        for (body, count) in runs {
            if count == 0 {
                continue;
            }
            match out.last_mut() {
                Some((prev, c)) if Rc::ptr_eq(prev, &body) => *c += count,
                _ => out.push((body, count)),
            }
        }
        let mut ends = Vec::with_capacity(out.len());
        let mut total = 0usize;
        for (_, c) in &out {
            total += *c as usize;
            ends.push(total);
        }
        TaskList { runs: out, ends }
    }

    /// Logical (expanded) task count.
    pub fn len(&self) -> usize {
        self.ends.last().copied().unwrap_or(0)
    }

    /// True when the section has no tasks.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The underlying `(body, count)` runs in logical order.
    pub fn runs(&self) -> &[(Rc<TaskBody>, u32)] {
        &self.runs
    }

    /// Iterate tasks in logical (expanded) order.
    pub fn iter(&self) -> TaskIter<'_> {
        TaskIter {
            runs: self.runs.iter(),
            current: None,
        }
    }
}

impl std::ops::Index<usize> for TaskList {
    type Output = Rc<TaskBody>;

    fn index(&self, idx: usize) -> &Rc<TaskBody> {
        let pos = self.ends.partition_point(|&e| e <= idx);
        &self.runs[pos].0
    }
}

impl From<Vec<Rc<TaskBody>>> for TaskList {
    fn from(tasks: Vec<Rc<TaskBody>>) -> Self {
        TaskList::from_runs(tasks.into_iter().map(|t| (t, 1)))
    }
}

impl FromIterator<Rc<TaskBody>> for TaskList {
    fn from_iter<I: IntoIterator<Item = Rc<TaskBody>>>(iter: I) -> Self {
        TaskList::from_runs(iter.into_iter().map(|t| (t, 1)))
    }
}

impl PartialEq for TaskList {
    /// Logical-sequence equality: two lists are equal iff their expanded
    /// task sequences are equal element-wise, regardless of run grouping.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

/// Logical-order iterator over a [`TaskList`].
pub struct TaskIter<'a> {
    runs: std::slice::Iter<'a, (Rc<TaskBody>, u32)>,
    current: Option<(&'a Rc<TaskBody>, u32)>,
}

impl<'a> Iterator for TaskIter<'a> {
    type Item = &'a Rc<TaskBody>;

    fn next(&mut self) -> Option<&'a Rc<TaskBody>> {
        loop {
            if let Some((body, remaining)) = &mut self.current {
                if *remaining > 0 {
                    *remaining -= 1;
                    return Some(body);
                }
                self.current = None;
            }
            let (body, count) = self.runs.next()?;
            self.current = Some((body, *count));
        }
    }
}

/// Owned logical-order iterator (yields `Rc` clones for repeats).
pub struct TaskListIntoIter {
    runs: std::vec::IntoIter<(Rc<TaskBody>, u32)>,
    current: Option<(Rc<TaskBody>, u32)>,
}

impl Iterator for TaskListIntoIter {
    type Item = Rc<TaskBody>;

    fn next(&mut self) -> Option<Rc<TaskBody>> {
        loop {
            if let Some((body, remaining)) = &mut self.current {
                if *remaining > 1 {
                    *remaining -= 1;
                    return Some(body.clone());
                }
                let (body, _) = self.current.take().expect("current run present");
                return Some(body);
            }
            let (body, count) = self.runs.next()?;
            debug_assert!(count > 0, "TaskList stores no zero-count runs");
            self.current = Some((body, count));
        }
    }
}

impl IntoIterator for TaskList {
    type Item = Rc<TaskBody>;
    type IntoIter = TaskListIntoIter;

    fn into_iter(self) -> TaskListIntoIter {
        TaskListIntoIter {
            runs: self.runs.into_iter(),
            current: None,
        }
    }
}

impl<'a> IntoIterator for &'a TaskList {
    type Item = &'a Rc<TaskBody>;
    type IntoIter = TaskIter<'a>;

    fn into_iter(self) -> TaskIter<'a> {
        self.iter()
    }
}

/// A parallel section: tasks that may run concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct ParSection {
    /// Tasks in iteration order, run-length encoded over `Rc`-shared
    /// repeated iterations.
    pub tasks: TaskList,
    /// Scheduling policy (OpenMP runtimes; Cilk ignores it).
    pub schedule: Schedule,
    /// Suppress the implicit end barrier.
    pub nowait: bool,
    /// Team size; `None` = one thread per core.
    pub team: Option<u32>,
}

impl ParSection {
    /// A section with default policy over the given tasks.
    pub fn new(tasks: Vec<Rc<TaskBody>>) -> Self {
        ParSection {
            tasks: tasks.into(),
            schedule: Schedule::static_block(),
            nowait: false,
            team: None,
        }
    }
}

/// A whole program: the master thread's operation sequence.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParallelProgram {
    /// Top-level operations, executed by the master.
    pub ops: Vec<POp>,
}

impl ParallelProgram {
    /// Total work in baseline cycles (each packet alone at stall ω₀),
    /// counting every task.
    pub fn total_baseline_cycles(&self, omega0: f64) -> f64 {
        fn ops_total(ops: &[POp], omega0: f64) -> f64 {
            ops.iter()
                .map(|op| match op {
                    POp::Work(p) => p.baseline_cycles(omega0),
                    POp::Locked { work, .. } => work.baseline_cycles(omega0),
                    POp::Par(sec) => sec.tasks.iter().map(|t| ops_total(&t.ops, omega0)).sum(),
                    POp::Pipe(pipe) => pipe
                        .items
                        .iter()
                        .flat_map(|it| it.stages.iter())
                        .map(|ops| ops_total(ops, omega0))
                        .sum(),
                })
                .sum()
        }
        ops_total(&self.ops, omega0)
    }

    /// Number of leaf operations (Work/Locked), counting shared tasks once
    /// per occurrence.
    pub fn leaf_ops(&self) -> u64 {
        fn count(ops: &[POp]) -> u64 {
            ops.iter()
                .map(|op| match op {
                    POp::Work(_) | POp::Locked { .. } => 1,
                    POp::Par(sec) => sec.tasks.iter().map(|t| count(&t.ops)).sum(),
                    POp::Pipe(pipe) => pipe
                        .items
                        .iter()
                        .flat_map(|it| it.stages.iter())
                        .map(|ops| count(ops))
                        .sum(),
                })
                .sum()
        }
        count(&self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_names_match_paper() {
        assert_eq!(Schedule::static1().name(), "static-1");
        assert_eq!(Schedule::static_block().name(), "static");
        assert_eq!(Schedule::dynamic1().name(), "dynamic-1");
        assert_eq!(Schedule::Guided { min_chunk: 4 }.name(), "guided-4");
    }

    #[test]
    fn program_totals() {
        let task = Rc::new(TaskBody {
            ops: vec![
                POp::Work(WorkPacket::cpu(100)),
                POp::Locked {
                    lock: 0,
                    work: WorkPacket::cpu(50),
                },
            ],
        });
        let prog = ParallelProgram {
            ops: vec![
                POp::Work(WorkPacket::cpu(10)),
                POp::Par(ParSection::new(vec![task.clone(), task.clone(), task])),
            ],
        };
        assert_eq!(prog.total_baseline_cycles(60.0), 10.0 + 3.0 * 150.0);
        assert_eq!(prog.leaf_ops(), 1 + 3 * 2);
    }

    #[test]
    fn task_list_coalesces_and_indexes_logically() {
        let a = Rc::new(TaskBody {
            ops: vec![POp::Work(WorkPacket::cpu(1))],
        });
        let b = Rc::new(TaskBody {
            ops: vec![POp::Work(WorkPacket::cpu(2))],
        });
        // Adjacent same-pointer runs coalesce; zero counts drop.
        let list = TaskList::from_runs(vec![
            (a.clone(), 2),
            (a.clone(), 3),
            (b.clone(), 0),
            (b.clone(), 1),
        ]);
        assert_eq!(list.runs().len(), 2);
        assert_eq!(list.len(), 6);
        for i in 0..5 {
            assert!(Rc::ptr_eq(&list[i], &a), "index {i}");
        }
        assert!(Rc::ptr_eq(&list[5], &b));

        // From<Vec> matches from_runs, and equality is logical.
        let flat: TaskList = vec![
            a.clone(),
            a.clone(),
            a.clone(),
            a.clone(),
            a.clone(),
            b.clone(),
        ]
        .into();
        assert_eq!(flat, list);
        assert_eq!(flat.runs().len(), 2);

        // Borrowing and owning iterators expand in logical order.
        assert_eq!(list.iter().count(), 6);
        let owned: Vec<_> = list.clone().into_iter().collect();
        assert_eq!(owned.len(), 6);
        assert!(Rc::ptr_eq(&owned[4], &a));
        assert!(Rc::ptr_eq(&owned[5], &b));
    }
}
