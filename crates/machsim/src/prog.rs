//! A runtime-agnostic parallel-program IR.
//!
//! Both runtimes (`omp_rt`, `cilk_rt`), the ground-truth runner in
//! `workloads`, and the synthesizer in `synthemu` express parallelised
//! programs in this little language: a sequence of operations where a
//! parallel section carries its tasks, scheduling policy, and team size.
//! The fast-forward emulator shares the [`Schedule`]/[`Paradigm`]
//! vocabulary so predictions and ground truth mean the same thing.

use std::rc::Rc;

use crate::thread::WorkPacket;

/// Threading paradigm a section is parallelised with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// OpenMP-like: explicit teams, loop worksharing with a schedule.
    OpenMp,
    /// Cilk-like: work-stealing tasks (`cilk_for` / spawn-sync).
    CilkPlus,
    /// OpenMP 3.0 `task`: a worker pool around one central task queue.
    OmpTask,
}

impl Paradigm {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Paradigm::OpenMp => "OpenMP",
            Paradigm::CilkPlus => "CilkPlus",
            Paradigm::OmpTask => "OmpTask",
        }
    }
}

/// OpenMP loop-scheduling policy (paper Fig. 5 distinguishes
/// `(static,1)`, `(static)`, and `(dynamic,1)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// `schedule(static[,chunk])`: `None` = contiguous block partition;
    /// `Some(c)` = round-robin chunks of `c` iterations.
    Static {
        /// Chunk size; `None` for the block partition.
        chunk: Option<u32>,
    },
    /// `schedule(dynamic,chunk)`: shared grab-counter.
    Dynamic {
        /// Iterations per grab.
        chunk: u32,
    },
    /// `schedule(guided,min)`: exponentially decreasing chunks.
    Guided {
        /// Minimum chunk size.
        min_chunk: u32,
    },
}

impl Schedule {
    /// `schedule(static,1)`.
    pub fn static1() -> Self {
        Schedule::Static { chunk: Some(1) }
    }

    /// `schedule(static)` (block partition).
    pub fn static_block() -> Self {
        Schedule::Static { chunk: None }
    }

    /// `schedule(dynamic,1)`.
    pub fn dynamic1() -> Self {
        Schedule::Dynamic { chunk: 1 }
    }

    /// Paper-style display name, e.g. `"static-1"`.
    pub fn name(&self) -> String {
        match self {
            Schedule::Static { chunk: None } => "static".to_string(),
            Schedule::Static { chunk: Some(c) } => format!("static-{c}"),
            Schedule::Dynamic { chunk } => format!("dynamic-{chunk}"),
            Schedule::Guided { min_chunk } => format!("guided-{min_chunk}"),
        }
    }
}

/// One operation in a task body or the main program.
#[derive(Debug, Clone)]
pub enum POp {
    /// Unprotected computation (a `U` node / FakeDelay).
    Work(WorkPacket),
    /// Computation under a user lock (an `L` node).
    Locked {
        /// User lock id (annotation `LOCK_BEGIN(id)`).
        lock: u32,
        /// The protected computation.
        work: WorkPacket,
    },
    /// A nested parallel section.
    Par(ParSection),
    /// A pipeline region (§VII-E extension): items stream through
    /// ordered stages, one stage-thread each.
    Pipe(PipeSection),
}

/// One stream item of a pipeline: its per-stage operation lists. Stage
/// ops may be `Work` or `Locked`; nested `Par`/`Pipe` inside a stage is
/// not supported by the runtimes.
#[derive(Debug, Clone, Default)]
pub struct PipeItem {
    /// Ops per stage, in stage order. All items of one pipeline must
    /// have the same stage count.
    pub stages: Vec<Vec<POp>>,
}

/// A pipeline region: one thread per stage, items processed in order.
#[derive(Debug, Clone)]
pub struct PipeSection {
    /// Stream items in order (Rc-shared for repeated items).
    pub items: Vec<Rc<PipeItem>>,
    /// Stage count (== `items[*].stages.len()`).
    pub stages: u32,
}

/// A task body: the ordered operations of one parallel task. Shared via
/// `Rc` so compressed trees stay compressed in the IR.
#[derive(Debug, Clone, Default)]
pub struct TaskBody {
    /// Ordered operations.
    pub ops: Vec<POp>,
}

/// A parallel section: tasks that may run concurrently.
#[derive(Debug, Clone)]
pub struct ParSection {
    /// Tasks in iteration order (Rc-shared for repeated iterations).
    pub tasks: Vec<Rc<TaskBody>>,
    /// Scheduling policy (OpenMP runtimes; Cilk ignores it).
    pub schedule: Schedule,
    /// Suppress the implicit end barrier.
    pub nowait: bool,
    /// Team size; `None` = one thread per core.
    pub team: Option<u32>,
}

impl ParSection {
    /// A section with default policy over the given tasks.
    pub fn new(tasks: Vec<Rc<TaskBody>>) -> Self {
        ParSection {
            tasks,
            schedule: Schedule::static_block(),
            nowait: false,
            team: None,
        }
    }
}

/// A whole program: the master thread's operation sequence.
#[derive(Debug, Clone, Default)]
pub struct ParallelProgram {
    /// Top-level operations, executed by the master.
    pub ops: Vec<POp>,
}

impl ParallelProgram {
    /// Total work in baseline cycles (each packet alone at stall ω₀),
    /// counting every task.
    pub fn total_baseline_cycles(&self, omega0: f64) -> f64 {
        fn ops_total(ops: &[POp], omega0: f64) -> f64 {
            ops.iter()
                .map(|op| match op {
                    POp::Work(p) => p.baseline_cycles(omega0),
                    POp::Locked { work, .. } => work.baseline_cycles(omega0),
                    POp::Par(sec) => sec.tasks.iter().map(|t| ops_total(&t.ops, omega0)).sum(),
                    POp::Pipe(pipe) => pipe
                        .items
                        .iter()
                        .flat_map(|it| it.stages.iter())
                        .map(|ops| ops_total(ops, omega0))
                        .sum(),
                })
                .sum()
        }
        ops_total(&self.ops, omega0)
    }

    /// Number of leaf operations (Work/Locked), counting shared tasks once
    /// per occurrence.
    pub fn leaf_ops(&self) -> u64 {
        fn count(ops: &[POp]) -> u64 {
            ops.iter()
                .map(|op| match op {
                    POp::Work(_) | POp::Locked { .. } => 1,
                    POp::Par(sec) => sec.tasks.iter().map(|t| count(&t.ops)).sum(),
                    POp::Pipe(pipe) => pipe
                        .items
                        .iter()
                        .flat_map(|it| it.stages.iter())
                        .map(|ops| count(ops))
                        .sum(),
                })
                .sum()
        }
        count(&self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_names_match_paper() {
        assert_eq!(Schedule::static1().name(), "static-1");
        assert_eq!(Schedule::static_block().name(), "static");
        assert_eq!(Schedule::dynamic1().name(), "dynamic-1");
        assert_eq!(Schedule::Guided { min_chunk: 4 }.name(), "guided-4");
    }

    #[test]
    fn program_totals() {
        let task = Rc::new(TaskBody {
            ops: vec![
                POp::Work(WorkPacket::cpu(100)),
                POp::Locked {
                    lock: 0,
                    work: WorkPacket::cpu(50),
                },
            ],
        });
        let prog = ParallelProgram {
            ops: vec![
                POp::Work(WorkPacket::cpu(10)),
                POp::Par(ParSection::new(vec![task.clone(), task.clone(), task])),
            ],
        };
        assert_eq!(prog.total_baseline_cycles(60.0), 10.0 + 3.0 * 150.0);
        assert_eq!(prog.leaf_ops(), 1 + 3 * 2);
    }
}
