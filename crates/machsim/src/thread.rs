//! Thread bodies, actions, and the environment handle they run against.

use serde::{Deserialize, Serialize};

use crate::sync::{BarrierId, SimLockId};

/// Identifier of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub u32);

/// One preemptible unit of computation: a pure-CPU part plus an LLC-miss
/// part issued uniformly across it. The machine stretches the memory part
/// under DRAM contention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkPacket {
    /// Pure CPU cycles (never stretched).
    pub compute_cycles: u64,
    /// Number of LLC misses (DRAM line transfers) issued by the packet.
    pub llc_misses: u64,
}

impl WorkPacket {
    /// A packet with no memory traffic.
    pub fn cpu(cycles: u64) -> Self {
        WorkPacket {
            compute_cycles: cycles,
            llc_misses: 0,
        }
    }

    /// A packet with both compute cycles and LLC misses.
    pub fn new(compute_cycles: u64, llc_misses: u64) -> Self {
        WorkPacket {
            compute_cycles,
            llc_misses,
        }
    }

    /// True when the packet performs no work at all.
    pub fn is_empty(&self) -> bool {
        self.compute_cycles == 0 && self.llc_misses == 0
    }

    /// Duration in cycles when run alone with base per-miss stall `omega0`.
    pub fn baseline_cycles(&self, omega0: f64) -> f64 {
        self.compute_cycles as f64 + self.llc_misses as f64 * omega0
    }
}

/// What a thread asks the machine to do next.
///
/// Returned from [`ThreadBody::step`]; instantaneous effects (spawning,
/// unparking, lock release) go through [`Env`] methods instead so that a
/// single step can perform several of them before yielding an action.
#[derive(Debug)]
pub enum Action {
    /// Execute a compute packet (preemptible, memory-aware).
    Compute(WorkPacket),
    /// Acquire a FIFO mutex; blocks when held by another thread.
    Acquire(SimLockId),
    /// Release a held mutex (instantaneous, then the body is stepped again).
    Release(SimLockId),
    /// Arrive at a barrier; blocks until all participants arrive.
    Barrier(BarrierId),
    /// Block until another thread calls [`Env::unpark`] (or consume a
    /// pending permit immediately).
    Park,
    /// Go to the back of the ready queue (voluntary preemption).
    Yield,
    /// Terminate this thread.
    Exit,
}

/// Environment handle passed to [`ThreadBody::step`].
///
/// Grants instantaneous kernel services; time only passes through returned
/// [`Action`]s.
pub trait Env {
    /// Current simulated time in cycles.
    fn now(&self) -> u64;
    /// Id of the stepping thread.
    fn me(&self) -> ThreadId;
    /// Create a new thread; it becomes ready immediately.
    fn spawn(&mut self, body: Box<dyn ThreadBody>) -> ThreadId;
    /// Wake a parked thread (or grant a permit if it isn't parked yet).
    fn unpark(&mut self, thread: ThreadId);
    /// Create a mutex.
    fn create_lock(&mut self) -> SimLockId;
    /// Create a barrier for `parties` participants.
    fn create_barrier(&mut self, parties: u32) -> BarrierId;
    /// Number of cores on the machine (runtimes size their worker pools
    /// from this).
    fn cores(&self) -> u32;
    /// The machine's structured-event recorder, when one is attached.
    /// Runtimes use it to record their own events (chunk dispatches,
    /// steals, region spans) on the shared virtual clock.
    #[cfg(feature = "obs")]
    fn obs(&self) -> Option<prophet_obs::ObsHandle> {
        None
    }
}

/// A simulated thread's program, written as a resumable state machine.
///
/// The machine calls [`step`](ThreadBody::step) whenever the thread is
/// runnable and its previous action has completed; the body returns the
/// next action. Bodies never observe preemption: a [`Action::Compute`]
/// packet may be time-sliced across many quanta but completes as one unit.
pub trait ThreadBody {
    /// Produce the next action.
    fn step(&mut self, env: &mut dyn Env) -> Action;
}

impl<F> ThreadBody for F
where
    F: FnMut(&mut dyn Env) -> Action,
{
    fn step(&mut self, env: &mut dyn Env) -> Action {
        self(env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_packet_helpers() {
        let p = WorkPacket::cpu(100);
        assert_eq!(p.llc_misses, 0);
        assert!(!p.is_empty());
        assert!(WorkPacket::new(0, 0).is_empty());
        let q = WorkPacket::new(100, 10);
        assert!((q.baseline_cycles(60.0) - 700.0).abs() < 1e-12);
    }
}
