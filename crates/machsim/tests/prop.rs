//! Property-based tests of the machine engine: conservation laws and
//! scheduling invariants that must hold for *any* workload.

use proptest::prelude::*;

use machsim::{Machine, MachineConfig, ScriptBody, ScriptOp, WorkPacket};

/// A randomly scripted thread: a few compute/lock/yield ops.
#[derive(Debug, Clone)]
struct ThreadScript {
    ops: Vec<(u8, u32)>,
}

fn script_strategy() -> impl Strategy<Value = ThreadScript> {
    proptest::collection::vec((0u8..4, 1u32..20_000), 1..8).prop_map(|ops| ThreadScript { ops })
}

/// Materialise a thread script against a fixed pair of locks. Lock ops
/// are emitted as balanced acquire/compute/release triples so scripts can
/// never deadlock.
fn build(script: &ThreadScript, locks: &[machsim::SimLockId; 2]) -> ScriptBody {
    let mut ops = Vec::new();
    for &(kind, len) in &script.ops {
        match kind {
            0 | 1 => ops.push(ScriptOp::Compute(WorkPacket::cpu(len as u64))),
            2 => {
                let l = locks[(len % 2) as usize];
                ops.push(ScriptOp::Acquire(l));
                ops.push(ScriptOp::Compute(WorkPacket::cpu(len as u64)));
                ops.push(ScriptOp::Release(l));
            }
            _ => ops.push(ScriptOp::Yield),
        }
    }
    ScriptBody::new(ops)
}

fn total_work(scripts: &[ThreadScript]) -> u64 {
    scripts
        .iter()
        .flat_map(|s| s.ops.iter())
        .map(|&(kind, len)| if kind <= 2 { len as u64 } else { 0 })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Work conservation: Σ busy == total scripted work (zero cs cost),
    /// and cores×makespan bounds it.
    #[test]
    fn work_conservation(
        scripts in proptest::collection::vec(script_strategy(), 1..8),
        cores in 1u32..6,
    ) {
        let mut cfg = MachineConfig::small(cores);
        cfg.quantum_cycles = 5_000;
        let mut m = Machine::new(cfg);
        let locks = [m.create_lock(), m.create_lock()];
        for s in &scripts {
            m.spawn(build(s, &locks));
        }
        let stats = m.run().expect("no deadlock possible");
        let work = total_work(&scripts);
        prop_assert_eq!(stats.busy_cycles, work);
        prop_assert!(stats.elapsed_cycles >= work / cores as u64);
        prop_assert!(stats.elapsed_cycles <= work + 1, "makespan beyond serialisation");
    }

    /// Makespan is monotone non-increasing in core count (no locks, no
    /// quantum effects beyond slicing).
    #[test]
    fn more_cores_never_slower(
        lens in proptest::collection::vec(1u64..50_000, 1..16),
    ) {
        let mut prev = u64::MAX;
        for cores in [1u32, 2, 4, 8] {
            let mut m = Machine::new(MachineConfig::small(cores));
            for &l in &lens {
                m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::cpu(l))]));
            }
            let elapsed = m.run().unwrap().elapsed_cycles;
            prop_assert!(elapsed <= prev, "cores={cores}: {elapsed} > {prev}");
            prev = elapsed;
        }
    }

    /// Determinism across runs for arbitrary scripts.
    #[test]
    fn engine_is_deterministic(
        scripts in proptest::collection::vec(script_strategy(), 1..6),
        cores in 1u32..5,
    ) {
        let run = || {
            let mut cfg = MachineConfig::small(cores);
            cfg.quantum_cycles = 3_000;
            cfg.context_switch_cycles = 17;
            let mut m = Machine::new(cfg);
            let locks = [m.create_lock(), m.create_lock()];
            for s in &scripts {
                m.spawn(build(s, &locks));
            }
            m.run().unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// The memory system never creates or destroys traffic: total DRAM
    /// bytes equal misses × line size regardless of contention.
    #[test]
    fn dram_bytes_conserved(
        misses in proptest::collection::vec(1u64..5_000, 1..10),
        bandwidth in 1u64..20,
    ) {
        let mut cfg = MachineConfig::small(12);
        cfg.dram_bytes_per_cycle = bandwidth as f64 / 4.0;
        cfg.queue_kappa = 0.25;
        let mut m = Machine::new(cfg);
        for &mm in &misses {
            m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(1_000, mm))]));
        }
        let stats = m.run().unwrap();
        let expected: u64 = misses.iter().sum::<u64>() * 64;
        let diff = (stats.dram_bytes as i64 - expected as i64).unsigned_abs();
        // Rounding at settle boundaries may drift by a few lines.
        prop_assert!(diff <= 64 * misses.len() as u64, "bytes {} vs {}", stats.dram_bytes, expected);
    }

    /// Contention can only slow things down: makespan with shared
    /// bandwidth ≥ makespan with infinite bandwidth.
    #[test]
    fn contention_is_never_free(
        packets in proptest::collection::vec((1u64..20_000, 0u64..2_000), 2..10),
    ) {
        let run = |bw: f64| {
            let mut cfg = MachineConfig::small(12);
            cfg.dram_bytes_per_cycle = bw;
            cfg.queue_kappa = 0.5;
            let mut m = Machine::new(cfg);
            for &(c, mm) in &packets {
                m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(c, mm))]));
            }
            m.run().unwrap().elapsed_cycles
        };
        let tight = run(0.5);
        let infinite = run(1e12);
        prop_assert!(tight >= infinite);
    }
}
