//! End-to-end tests of the machine engine: scheduling, preemption,
//! synchronisation, and memory contention.

use machsim::{Machine, MachineConfig, ScriptBody, ScriptOp, ThreadId, WorkPacket};

fn cpu(n: u64) -> ScriptOp {
    ScriptOp::Compute(WorkPacket::cpu(n))
}

#[test]
fn two_threads_two_cores_run_in_parallel() {
    let mut m = Machine::new(MachineConfig::small(2));
    m.spawn(ScriptBody::new(vec![cpu(1000)]));
    m.spawn(ScriptBody::new(vec![cpu(1000)]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 1000);
    assert_eq!(s.busy_cycles, 2000);
}

#[test]
fn two_threads_one_core_serialize() {
    let mut m = Machine::new(MachineConfig::small(1));
    m.spawn(ScriptBody::new(vec![cpu(1000)]));
    m.spawn(ScriptBody::new(vec![cpu(1000)]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 2000);
}

#[test]
fn oversubscription_time_slices_fairly() {
    // 4 equal threads on 2 cores with a small quantum: makespan is 2× one
    // thread, and every thread should finish near the end (interleaved),
    // not two-then-two (run-to-completion) — that's the preemptive
    // behaviour the paper's Fig. 7 hinges on.
    let mut cfg = MachineConfig::small(2);
    cfg.quantum_cycles = 100;
    let mut m = Machine::new(cfg);
    for _ in 0..4 {
        m.spawn(ScriptBody::new(vec![cpu(10_000)]));
    }
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 20_000);
    assert!(s.preemptions > 0, "expected quantum preemptions");
    // With round-robin slicing, the earliest finisher ends well past the
    // halfway point; run-to-completion would finish two threads at 10_000.
    let earliest = s.threads.iter().map(|t| t.finished_at).min().unwrap();
    assert!(
        earliest > 15_000,
        "earliest finish {earliest} suggests run-to-completion, not time slicing"
    );
}

#[test]
fn quantum_not_preempted_when_ready_queue_empty() {
    let mut cfg = MachineConfig::small(2);
    cfg.quantum_cycles = 100;
    let mut m = Machine::new(cfg);
    m.spawn(ScriptBody::new(vec![cpu(5_000)]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 5_000);
    assert_eq!(s.preemptions, 0);
}

#[test]
fn context_switch_cost_charged() {
    let mut cfg = MachineConfig::small(1);
    cfg.quantum_cycles = 1_000;
    cfg.context_switch_cycles = 10;
    let mut m = Machine::new(cfg);
    m.spawn(ScriptBody::new(vec![cpu(3_000)]));
    m.spawn(ScriptBody::new(vec![cpu(3_000)]));
    let s = m.run().unwrap();
    // 6000 cycles of work plus at least a few switches of 10 cycles.
    assert!(s.elapsed_cycles > 6_000, "elapsed {}", s.elapsed_cycles);
    assert!(s.context_switches >= 2);
}

#[test]
fn lock_serializes_critical_sections() {
    let mut m = Machine::new(MachineConfig::small(4));
    let l = m.create_lock();
    for _ in 0..4 {
        m.spawn(ScriptBody::new(vec![
            ScriptOp::Acquire(l),
            cpu(1_000),
            ScriptOp::Release(l),
        ]));
    }
    let s = m.run().unwrap();
    // All critical sections serialise: makespan = 4 × 1000.
    assert_eq!(s.elapsed_cycles, 4_000);
    assert_eq!(s.lock_acquisitions, 4);
    assert_eq!(s.lock_contended, 3);
}

#[test]
fn lock_plus_parallel_work_amdahl_shape() {
    // Each of 4 threads: 3000 parallel + 1000 locked. Serial total 16000.
    // On 4 cores the locked parts chain: makespan ≥ 4000 + first entry.
    let mut m = Machine::new(MachineConfig::small(4));
    let l = m.create_lock();
    for _ in 0..4 {
        m.spawn(ScriptBody::new(vec![
            cpu(3_000),
            ScriptOp::Acquire(l),
            cpu(1_000),
            ScriptOp::Release(l),
        ]));
    }
    let s = m.run().unwrap();
    // All threads hit the lock at t=3000; 4 × 1000 of lock chain after.
    assert_eq!(s.elapsed_cycles, 7_000);
}

#[test]
fn barrier_joins_threads() {
    let mut m = Machine::new(MachineConfig::small(4));
    let b = m.create_barrier(3);
    // Unequal phases before the barrier; equal after.
    for len in [1_000u64, 2_000, 3_000] {
        m.spawn(ScriptBody::new(vec![
            cpu(len),
            ScriptOp::Barrier(b),
            cpu(500),
        ]));
    }
    let s = m.run().unwrap();
    // Barrier at 3000 (slowest), then 500 more.
    assert_eq!(s.elapsed_cycles, 3_500);
}

#[test]
fn park_unpark_handshake() {
    let mut m = Machine::new(MachineConfig::small(2));
    // Thread 0 parks; thread 1 computes then unparks 0.
    m.spawn(ScriptBody::new(vec![ScriptOp::Park, cpu(100)]));
    m.spawn(ScriptBody::new(vec![
        cpu(2_000),
        ScriptOp::Unpark(ThreadId(0)),
    ]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 2_100);
}

#[test]
fn unpark_before_park_grants_permit() {
    let mut m = Machine::new(MachineConfig::small(2));
    // Thread 1 unparks thread 0 immediately; thread 0 parks later and must
    // not block.
    m.spawn(ScriptBody::new(vec![cpu(1_000), ScriptOp::Park, cpu(100)]));
    m.spawn(ScriptBody::new(vec![ScriptOp::Unpark(ThreadId(0))]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 1_100);
}

#[test]
fn deadlock_detected() {
    let mut m = Machine::new(MachineConfig::small(1));
    m.spawn(ScriptBody::new(vec![ScriptOp::Park]));
    let err = m.run().unwrap_err();
    match err {
        machsim::RunError::Deadlock { blocked, .. } => assert_eq!(blocked.len(), 1),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn memory_contention_stretches_makespan() {
    // A memory machine where one hungry thread uses ~1/4 of peak: 4+
    // hungry threads saturate.
    let mut cfg = MachineConfig::small(8);
    cfg.dram_bytes_per_cycle = 64.0 / 60.0 * 4.0; // 4× single-thread demand
    cfg.dram_base_stall = 60.0;
    cfg.queue_kappa = 0.0;
    let hungry = || ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(0, 10_000))]);

    // 1 thread: baseline duration = misses × ω0.
    let mut m1 = Machine::new(cfg);
    m1.spawn(hungry());
    let t1 = m1.run().unwrap().elapsed_cycles;
    assert_eq!(t1, 600_000);

    // 4 threads: at the exact saturation knee, still ~t1.
    let mut m4 = Machine::new(cfg);
    for _ in 0..4 {
        m4.spawn(hungry());
    }
    let t4 = m4.run().unwrap().elapsed_cycles;
    assert!((t4 as f64) < 1.05 * t1 as f64, "t4={t4} vs t1={t1}");

    // 8 threads: demand 2× peak ⇒ makespan ≈ 2× t1.
    let mut m8 = Machine::new(cfg);
    for _ in 0..8 {
        m8.spawn(hungry());
    }
    let t8 = m8.run().unwrap().elapsed_cycles;
    let ratio = t8 as f64 / t1 as f64;
    assert!(
        (1.9..2.1).contains(&ratio),
        "expected ~2x stretch, got {ratio}"
    );
}

#[test]
fn cpu_threads_unaffected_by_memory_contention() {
    let mut cfg = MachineConfig::small(4);
    cfg.dram_bytes_per_cycle = 1.0;
    cfg.queue_kappa = 0.0;
    let mut m = Machine::new(cfg);
    // Two hungry memory threads + one pure-CPU thread.
    m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(
        0, 10_000,
    ))]));
    m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(
        0, 10_000,
    ))]));
    m.spawn(ScriptBody::new(vec![cpu(50_000)]));
    let s = m.run().unwrap();
    // The CPU thread finishes exactly on time.
    assert_eq!(s.threads[2].finished_at, 50_000);
}

#[test]
fn dram_bytes_accounted() {
    let mut cfg = MachineConfig::small(1);
    cfg.line_bytes = 64;
    let mut m = Machine::new(cfg);
    m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(
        1_000, 100,
    ))]));
    let s = m.run().unwrap();
    assert_eq!(s.dram_bytes, 6_400);
    assert_eq!(s.threads[0].dram_bytes, 6_400);
}

#[test]
fn determinism_same_seed_same_result() {
    let build = || {
        let mut cfg = MachineConfig::small(3);
        cfg.quantum_cycles = 77;
        cfg.context_switch_cycles = 5;
        let mut m = Machine::new(cfg);
        let l = m.create_lock();
        let b = m.create_barrier(5);
        for i in 0..5u64 {
            m.spawn(ScriptBody::new(vec![
                cpu(100 + i * 37),
                ScriptOp::Acquire(l),
                cpu(50),
                ScriptOp::Release(l),
                ScriptOp::Barrier(b),
                cpu(200),
            ]));
        }
        m
    };
    let a = build().run().unwrap();
    let b = build().run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn spawn_from_running_thread() {
    // A body that spawns two children then waits for them via barrier.
    use machsim::{Action, Env, ThreadBody};

    struct Parent {
        phase: u32,
        barrier: Option<machsim::BarrierId>,
    }
    impl ThreadBody for Parent {
        fn step(&mut self, env: &mut dyn Env) -> Action {
            match self.phase {
                0 => {
                    self.phase = 1;
                    let b = env.create_barrier(3);
                    self.barrier = Some(b);
                    for _ in 0..2 {
                        env.spawn(Box::new(ScriptBody::new(vec![
                            cpu(1_000),
                            ScriptOp::Barrier(b),
                        ])));
                    }
                    Action::Compute(WorkPacket::cpu(100))
                }
                1 => {
                    self.phase = 2;
                    Action::Barrier(self.barrier.unwrap())
                }
                _ => Action::Exit,
            }
        }
    }

    let mut m = Machine::new(MachineConfig::small(4));
    m.spawn(Parent {
        phase: 0,
        barrier: None,
    });
    let s = m.run().unwrap();
    assert_eq!(s.threads_spawned, 3);
    assert_eq!(s.elapsed_cycles, 1_000);
}

#[test]
fn mixed_compute_and_memory_baseline_duration() {
    // C=1000, M=100, ω0=60 → baseline 7000 cycles when alone.
    let cfg = MachineConfig::small(1);
    let mut m = Machine::new(cfg);
    m.spawn(ScriptBody::new(vec![ScriptOp::Compute(WorkPacket::new(
        1_000, 100,
    ))]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 7_000);
}

#[test]
fn yield_rotates_ready_queue() {
    let mut m = Machine::new(MachineConfig::small(1));
    m.spawn(ScriptBody::new(vec![cpu(100), ScriptOp::Yield, cpu(100)]));
    m.spawn(ScriptBody::new(vec![cpu(100)]));
    let s = m.run().unwrap();
    assert_eq!(s.elapsed_cycles, 300);
    // Thread 1 should have run between the two halves of thread 0.
    assert_eq!(s.threads[1].finished_at, 200);
    assert_eq!(s.threads[0].finished_at, 300);
}

/// A memory-bound mixed workload: several threads alternating compute and
/// DRAM-heavy packets, enough to exercise the ω solver repeatedly.
fn memory_bound_scripts(m: &mut Machine) {
    for t in 0..4u64 {
        let mut ops = Vec::new();
        for i in 0..6 {
            ops.push(ScriptOp::Compute(WorkPacket::new(
                500 + t * 37,
                200 + (i % 3) * 50,
            )));
            ops.push(ScriptOp::Compute(WorkPacket::cpu(200)));
        }
        m.spawn(ScriptBody::new(ops));
    }
}

#[test]
fn reset_reuse_matches_fresh_machines() {
    // Two back-to-back runs on ONE machine (reset between) must produce
    // exactly the stats of two fresh machines: reset leaves no residue in
    // the event heap, solver caches, or generation counters.
    let mut cfg = MachineConfig::small(2);
    cfg.quantum_cycles = 1_000;
    let fresh: Vec<_> = (0..2)
        .map(|_| {
            let mut m = Machine::new(cfg);
            memory_bound_scripts(&mut m);
            m.run().unwrap()
        })
        .collect();

    let mut reused = Machine::new(cfg);
    memory_bound_scripts(&mut reused);
    let first = reused.run().unwrap();
    reused.reset();
    memory_bound_scripts(&mut reused);
    let second = reused.run().unwrap();

    assert_eq!(first, fresh[0], "first run on reused machine");
    assert_eq!(second, fresh[1], "second run after reset");
    assert_eq!(first, second, "identical programs, identical stats");
}

#[test]
fn omega_cache_hits_on_memory_bound_run() {
    // Threads repeatedly form the same (C, M) running-set compositions, so
    // the memoised solver should serve a healthy share of recomputations
    // from cache.
    let mut m = Machine::new(MachineConfig::small(2));
    memory_bound_scripts(&mut m);
    m.run().unwrap();
    assert!(
        m.omega_cache_hits() > 0,
        "expected ω cache hits on a memory-bound workload"
    );
}
