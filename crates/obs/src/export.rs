//! Trace exporters: Chrome Trace Event (Perfetto-loadable) JSON, compact
//! JSONL, and a plain-text timeline summary.
//!
//! All three walk the recorder's event stream in insertion order and use
//! only ordered containers, so same-seed runs export byte-identical
//! output — the determinism the golden-file tests rely on.

use std::collections::BTreeSet;

use serde::Value;

use crate::metrics::{core_intervals, TraceMetrics};
use crate::record::{Event, EventKind, Recorder, SpanKind};

/// `pid` used for the simulated-core tracks in Chrome traces.
pub const PID_CORES: u64 = 0;
/// `pid` used for the per-thread/worker tracks.
pub const PID_THREADS: u64 = 1;
/// `pid` used for the DRAM bandwidth counter track.
pub const PID_MEMORY: u64 = 2;

pub(crate) fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

pub(crate) fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

/// Structured fields of an event (identifier-style, labels resolved),
/// shared between the JSONL dump and the Chrome-trace `args` objects.
fn kind_fields(rec: &Recorder, kind: &EventKind) -> Vec<(String, Value)> {
    let u = |v: u32| Value::U64(v as u64);
    let f = |name: &str, v: Value| (name.to_string(), v);
    match *kind {
        EventKind::ThreadSpawn { thread } | EventKind::ThreadUnpark { thread } => {
            vec![f("thread", u(thread))]
        }
        EventKind::ThreadDispatch { core, thread }
        | EventKind::ThreadPreempt { core, thread }
        | EventKind::ThreadYield { core, thread }
        | EventKind::ThreadBlock { core, thread }
        | EventKind::ThreadExit { core, thread } => {
            vec![f("core", u(core)), f("thread", u(thread))]
        }
        EventKind::LockAcquire { lock, thread }
        | EventKind::LockWait { lock, thread }
        | EventKind::LockRelease { lock, thread } => {
            vec![f("lock", u(lock)), f("thread", u(thread))]
        }
        EventKind::BarrierEnter { barrier, thread } => {
            vec![f("barrier", u(barrier)), f("thread", u(thread))]
        }
        EventKind::BarrierRelease { barrier, woken } => {
            vec![f("barrier", u(barrier)), f("woken", u(woken))]
        }
        EventKind::DramRate {
            active,
            omega_milli,
        } => {
            vec![
                f("active", u(active)),
                f("omega_milli", Value::U64(omega_milli)),
            ]
        }
        EventKind::ChunkDispatch { worker, lo, hi } => {
            vec![f("worker", u(worker)), f("lo", u(lo)), f("hi", u(hi))]
        }
        EventKind::StealAttempt {
            thief,
            victim,
            success,
        } => {
            vec![
                f("thief", u(thief)),
                f("victim", u(victim)),
                f("success", Value::Bool(success)),
            ]
        }
        EventKind::TaskSpawn { worker } | EventKind::TaskSync { worker } => {
            vec![f("worker", u(worker))]
        }
        EventKind::EmuHeapPop { cpu } => vec![f("cpu", u(cpu))],
        EventKind::OverheadSubtract { cycles } => vec![f("cycles", Value::U64(cycles))],
        EventKind::SpanBegin {
            kind,
            label,
            thread,
        }
        | EventKind::SpanEnd {
            kind,
            label,
            thread,
        } => {
            let mut v = vec![f("span", s(kind.name())), f("label", s(rec.label(label)))];
            if thread != u32::MAX {
                v.push(f("thread", u(thread)));
            }
            v
        }
    }
}

/// The `tid` an event's instant marker should land on in the thread
/// process, or `None` for events that aren't per-thread instants.
fn event_tid(kind: &EventKind) -> Option<u64> {
    match *kind {
        EventKind::ThreadSpawn { thread }
        | EventKind::ThreadUnpark { thread }
        | EventKind::LockAcquire { thread, .. }
        | EventKind::LockWait { thread, .. }
        | EventKind::LockRelease { thread, .. }
        | EventKind::BarrierEnter { thread, .. } => Some(thread as u64),
        EventKind::BarrierRelease { .. } => Some(0),
        EventKind::ChunkDispatch { worker, .. }
        | EventKind::TaskSpawn { worker }
        | EventKind::TaskSync { worker } => Some(worker as u64),
        EventKind::StealAttempt { thief, .. } => Some(thief as u64),
        EventKind::EmuHeapPop { cpu } => Some(cpu as u64),
        EventKind::OverheadSubtract { .. } => Some(0),
        // Scheduler transitions are visible as core spans; DRAM rates
        // become counter samples; spans become complete events.
        _ => None,
    }
}

/// Export the trace as Chrome Trace Event Format JSON.
///
/// Track layout: process [`PID_CORES`] has one track per simulated core
/// showing which thread occupied it (complete `X` events); process
/// [`PID_THREADS`] has one track per thread/worker carrying annotation
/// and runtime spans plus instant markers; process [`PID_MEMORY`] holds
/// a `dram_active` counter sampled at each rate recomputation. Load the
/// file in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace_json(rec: &Recorder, cores: u32) -> String {
    let mut events: Vec<Value> = Vec::new();

    // -- metadata: process and track names ---------------------------------
    let meta = |pid: u64, tid: u64, what: &str, name: &str| {
        obj(vec![
            ("name", s(what)),
            ("ph", s("M")),
            ("pid", Value::U64(pid)),
            ("tid", Value::U64(tid)),
            ("args", obj(vec![("name", s(name))])),
        ])
    };
    events.push(meta(PID_CORES, 0, "process_name", "cores"));
    events.push(meta(PID_THREADS, 0, "process_name", "threads"));
    events.push(meta(PID_MEMORY, 0, "process_name", "memory"));

    let intervals = core_intervals(rec);
    let ncores = (cores as u64).max(
        intervals
            .iter()
            .map(|iv| iv.core as u64 + 1)
            .max()
            .unwrap_or(0),
    );
    for c in 0..ncores {
        events.push(meta(PID_CORES, c, "thread_name", &format!("core {c}")));
    }
    let mut tids: BTreeSet<u64> = BTreeSet::new();
    for ev in rec.events() {
        if let Some(tid) = event_tid(&ev.kind) {
            tids.insert(tid);
        }
        if let EventKind::SpanBegin { thread, .. } | EventKind::SpanEnd { thread, .. } = ev.kind {
            if thread != u32::MAX {
                tids.insert(thread as u64);
            }
        }
    }
    for &tid in &tids {
        events.push(meta(
            PID_THREADS,
            tid,
            "thread_name",
            &format!("thread {tid}"),
        ));
    }

    // -- core occupancy: one complete event per busy interval --------------
    for iv in &intervals {
        events.push(obj(vec![
            ("name", s(&format!("T{}", iv.thread))),
            ("cat", s("core")),
            ("ph", s("X")),
            ("ts", Value::U64(iv.start)),
            ("dur", Value::U64(iv.end - iv.start)),
            ("pid", Value::U64(PID_CORES)),
            ("tid", Value::U64(iv.core as u64)),
            ("args", obj(vec![("thread", Value::U64(iv.thread as u64))])),
        ]));
    }

    // -- spans, instants, counters in event order --------------------------
    // Open span stack per (kind, thread): SpanEnd matches the latest begin.
    let mut open: Vec<(SpanKind, u32, u32, u64)> = Vec::new(); // (kind, thread, label, start)
    for ev in rec.events() {
        match ev.kind {
            EventKind::SpanBegin {
                kind,
                label,
                thread,
            } => {
                open.push((kind, thread, label, ev.t));
            }
            EventKind::SpanEnd {
                kind,
                label,
                thread,
            } => {
                let found = open
                    .iter()
                    .rposition(|&(k, th, l, _)| k == kind && th == thread && l == label);
                if let Some(i) = found {
                    let (_, _, _, start) = open.remove(i);
                    let tid = if thread == u32::MAX { 0 } else { thread as u64 };
                    events.push(obj(vec![
                        ("name", s(rec.label(label))),
                        ("cat", s(kind.name())),
                        ("ph", s("X")),
                        ("ts", Value::U64(start)),
                        ("dur", Value::U64(ev.t - start)),
                        ("pid", Value::U64(PID_THREADS)),
                        ("tid", Value::U64(tid)),
                        ("args", obj(vec![("span", s(kind.name()))])),
                    ]));
                }
            }
            EventKind::DramRate {
                active,
                omega_milli,
            } => {
                events.push(obj(vec![
                    ("name", s("dram_active")),
                    ("ph", s("C")),
                    ("ts", Value::U64(ev.t)),
                    ("pid", Value::U64(PID_MEMORY)),
                    ("tid", Value::U64(0)),
                    ("args", obj(vec![("active", Value::U64(active as u64))])),
                ]));
                events.push(obj(vec![
                    ("name", s("omega_milli")),
                    ("ph", s("C")),
                    ("ts", Value::U64(ev.t)),
                    ("pid", Value::U64(PID_MEMORY)),
                    ("tid", Value::U64(0)),
                    ("args", obj(vec![("omega_milli", Value::U64(omega_milli))])),
                ]));
            }
            _ => {
                if let Some(tid) = event_tid(&ev.kind) {
                    events.push(obj(vec![
                        ("name", s(ev.kind.name())),
                        ("cat", s("event")),
                        ("ph", s("i")),
                        ("ts", Value::U64(ev.t)),
                        ("pid", Value::U64(PID_THREADS)),
                        ("tid", Value::U64(tid)),
                        ("s", s("t")),
                        ("args", Value::Object(kind_fields(rec, &ev.kind))),
                    ]));
                }
            }
        }
    }

    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("generator", s("prophet-obs")),
                ("clock", s("virtual-cycles")),
                ("events_recorded", Value::U64(rec.len() as u64)),
                ("events_dropped", Value::U64(rec.dropped())),
            ]),
        ),
    ]);
    serde_json::to_string(&doc).expect("serialising a Value cannot fail")
}

fn event_to_value(rec: &Recorder, ev: &Event) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("t".to_string(), Value::U64(ev.t)),
        ("kind".to_string(), s(ev.kind.name())),
    ];
    fields.extend(kind_fields(rec, &ev.kind));
    Value::Object(fields)
}

/// Export the trace as JSON Lines: one compact object per event, in
/// event order, with interned labels resolved. Suited to `grep`/`jq`
/// pipelines and golden-file diffs.
pub fn jsonl_dump(rec: &Recorder) -> String {
    let mut out = String::new();
    for ev in rec.events() {
        let line = serde_json::to_string(&event_to_value(rec, ev))
            .expect("serialising a Value cannot fail");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn bar(frac: f64, width: usize) -> String {
    let filled = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Render a plain-text summary of the trace: headline numbers, event
/// counts, a per-core utilisation table, the utilisation timeline, the
/// most contended locks, and bandwidth occupancy.
pub fn timeline_summary(rec: &Recorder, cores: u32) -> String {
    let m = TraceMetrics::from_recorder(rec, cores);
    let mut out = String::new();
    out.push_str("== trace summary ==\n");
    out.push_str(&format!(
        "events: {} recorded, {} dropped; span: {} cycles on {} cores\n",
        rec.len(),
        rec.dropped(),
        m.elapsed,
        m.cores
    ));
    out.push_str(&format!(
        "overall core utilization: {:5.1}%\n",
        m.utilization() * 100.0
    ));

    out.push_str("\n-- event counts --\n");
    for (name, count) in m.registry.counters() {
        if let Some(kind) = name.strip_prefix("events.") {
            out.push_str(&format!("  {kind:<20} {count:>10}\n"));
        }
    }

    out.push_str("\n-- per-core busy --\n");
    for (c, &busy) in m.core_busy.iter().enumerate() {
        let frac = if m.elapsed > 0 {
            busy as f64 / m.elapsed as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  core {c:<3} [{}] {:5.1}%  ({busy} cycles)\n",
            bar(frac, 40),
            frac * 100.0
        ));
    }

    out.push_str("\n-- utilization timeline (cores busy over virtual time) --\n  [");
    for &u in &m.utilization_timeline {
        let glyph = match (u * 8.0) as u32 {
            0 => ' ',
            1 => '.',
            2 => ':',
            3 => '-',
            4 => '=',
            5 => '+',
            6 => '*',
            7 => '%',
            _ => '#',
        };
        out.push(glyph);
    }
    out.push_str("]\n");

    let hot = m.hottest_locks();
    if !hot.is_empty() {
        out.push_str("\n-- locks by total wait --\n");
        for (lock, st) in hot.iter().take(5) {
            let pct = if m.elapsed > 0 {
                st.total_wait as f64 / m.elapsed as f64 * 100.0
            } else {
                0.0
            };
            out.push_str(&format!(
                "  lock {lock:<4} acquires {:>7}  waits {:>7}  wait cycles {:>10} ({pct:4.1}% of span)\n",
                st.acquires, st.waits, st.total_wait
            ));
        }
        if m.lock_wait.count() > 0 {
            out.push_str(&format!(
                "  wait distribution: mean {:.0}, p50 {}, p95 {}, max {}\n",
                m.lock_wait.mean(),
                m.lock_wait.quantile(0.50),
                m.lock_wait.quantile(0.95),
                m.lock_wait.max()
            ));
        }
    }

    if !m.bandwidth.is_empty() {
        out.push_str(&format!(
            "\n-- memory --\n  dram rate recomputations: {}, peak concurrently-active packets: {}\n",
            m.bandwidth.len(),
            m.peak_dram_active()
        ));
    }

    out
}

/// Sanitise a metric name into the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Render a [`MetricsRegistry`] in the Prometheus text exposition
/// format: counters and gauges one sample each, histograms as
/// cumulative `_bucket{le="..."}` series (upper bounds from the log₂
/// buckets) plus `_sum`/`_count`. Deterministic: the registry iterates
/// in name order and buckets in bound order.
pub fn prometheus_text(reg: &crate::metrics::MetricsRegistry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in reg.gauges() {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in reg.histograms() {
        let n = prom_name(name);
        out.push_str(&format!("# TYPE {n} histogram\n"));
        let mut cumulative = 0u64;
        for (lower, count) in h.nonzero_buckets() {
            cumulative += count;
            // Bucket with lower bound 2^(i-1) holds values < 2^i.
            let le = if lower == 0 { 0 } else { lower * 2 - 1 };
            out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{n}_sum {}\n", h.sum()));
        out.push_str(&format!("{n}_count {}\n", h.count()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventKind as K, Recorder};

    fn sample_recorder() -> Recorder {
        let mut r = Recorder::new();
        let lbl = r.intern("region0");
        r.record(0, K::ThreadDispatch { core: 0, thread: 1 });
        r.record(
            0,
            K::SpanBegin {
                kind: SpanKind::Region,
                label: lbl,
                thread: 1,
            },
        );
        r.record(5, K::LockWait { lock: 0, thread: 1 });
        r.record(9, K::LockAcquire { lock: 0, thread: 1 });
        r.record(12, K::LockRelease { lock: 0, thread: 1 });
        r.record(
            15,
            K::DramRate {
                active: 3,
                omega_milli: 2500,
            },
        );
        r.record(
            20,
            K::SpanEnd {
                kind: SpanKind::Region,
                label: lbl,
                thread: 1,
            },
        );
        r.record(20, K::ThreadExit { core: 0, thread: 1 });
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_tracks() {
        let r = sample_recorder();
        let json = chrome_trace_json(&r, 2);
        let doc = serde_json::from_str(&json).expect("valid JSON");
        let Value::Object(fields) = &doc else {
            panic!("object expected")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents");
        let Value::Array(events) = events else {
            panic!("array expected")
        };
        // Must contain metadata, an X core span, an X region span, a
        // counter sample and instant markers.
        let phases: Vec<String> = events
            .iter()
            .filter_map(|e| match e {
                Value::Object(f) => f
                    .iter()
                    .find(|(k, _)| k == "ph")
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    }),
                _ => None,
            })
            .collect();
        for needed in ["M", "X", "C", "i"] {
            assert!(phases.iter().any(|p| p == needed), "missing phase {needed}");
        }
    }

    #[test]
    fn chrome_trace_is_deterministic() {
        let a = chrome_trace_json(&sample_recorder(), 2);
        let b = chrome_trace_json(&sample_recorder(), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn jsonl_has_one_line_per_event() {
        let r = sample_recorder();
        let dump = jsonl_dump(&r);
        assert_eq!(dump.lines().count(), r.len());
        for line in dump.lines() {
            serde_json::from_str::<Value>(line).expect("each line is valid JSON");
        }
        assert!(dump.contains("\"kind\":\"lock_acquire\""));
        assert!(dump.contains("\"label\":\"region0\""));
    }

    #[test]
    fn summary_mentions_headline_sections() {
        let r = sample_recorder();
        let text = timeline_summary(&r, 2);
        assert!(text.contains("trace summary"));
        assert!(text.contains("per-core busy"));
        assert!(text.contains("locks by total wait"));
        assert!(text.contains("dram rate recomputations"));
    }

    #[test]
    fn prometheus_text_renders_all_metric_kinds() {
        let mut reg = crate::metrics::MetricsRegistry::new();
        reg.inc("serve.requests_total", 3);
        reg.set_gauge("serve.queue_depth", 2.0);
        for v in [1u64, 2, 3, 900] {
            reg.observe("serve.batch_size", v);
        }
        let text = prometheus_text(&reg);
        assert!(text.contains("# TYPE serve_requests_total counter\nserve_requests_total 3\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"));
        assert!(text.contains("# TYPE serve_batch_size histogram"));
        assert!(text.contains("serve_batch_size_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_batch_size_sum 906"));
        assert!(text.contains("serve_batch_size_count 4"));
        // Bucket series are cumulative: the last finite bound covers all
        // but nothing beyond the total.
        assert!(text.contains("serve_batch_size_bucket{le=\"1023\"} 4"));
        // Deterministic output.
        assert_eq!(text, prometheus_text(&reg));
    }
}
