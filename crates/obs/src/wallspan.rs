//! Wall-clock request tracing for the serve fleet.
//!
//! Everything else in this crate observes **virtual** time inside the
//! emulators; this module observes **wall-clock** time across the
//! serving stack (daemon → router → shards → store), where a request's
//! latency is real and distributed over processes:
//!
//! * [`TraceId`]/[`SpanId`] — 64-bit ids drawn from a splitmix64 stream
//!   per process. Normally seeded from the clock; the
//!   `PROPHET_TRACE_SEED` environment variable pins the stream so trace
//!   exports stay goldenable in tests.
//! * [`TraceContext`] — the `x-prophet-trace` header codec
//!   (`<trace>-<parent span>`, both zero-padded hex), which is how one
//!   trace id survives router → owner-shard → forwarded-shard hops.
//! * [`SpanSink`] — a cheap shared append buffer, one per request; the
//!   connection thread and the batch worker both push finished
//!   [`WallSpan`]s into it without coordinating beyond a short lock.
//! * [`WallHistogram`] — a log-linear latency histogram (each power-of-
//!   two octave split into 32 linear sub-buckets, so quantile readout is
//!   within ~3% of exact) with p50/p95/p99 and bucket-wise merging.
//! * Exporters — Chrome-trace JSON (one track per process, loadable in
//!   Perfetto) and a JSONL span dump that doubles as the wire format
//!   when stitching a trace across processes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

use crate::export::{obj, s};

/// The SplitMix64 mixer: a bijective avalanche over `u64`. Consecutive
/// counter values map to statistically independent ids, so one atomic
/// counter yields the whole id stream.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Read a `u64` out of a parsed JSON number without an f64 round-trip
/// (exactness matters for unix-nano timestamps and bucket bounds).
fn exact_u64(v: &Value) -> Option<u64> {
    match *v {
        Value::U64(u) => Some(u),
        Value::I64(i) => u64::try_from(i).ok(),
        Value::F64(f) if f >= 0.0 => Some(f as u64),
        _ => None,
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 64-bit trace identifier shared by every span of one request, no
/// matter how many processes it crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

/// A 64-bit span identifier, unique within its process's id stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl TraceId {
    /// Zero-padded lower-case hex, the wire spelling.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire spelling (any-length hex accepted).
    pub fn parse_hex(sv: &str) -> Option<TraceId> {
        u64::from_str_radix(sv, 16).ok().map(TraceId)
    }
}

impl SpanId {
    /// Zero-padded lower-case hex, the wire spelling.
    pub fn hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the wire spelling.
    pub fn parse_hex(sv: &str) -> Option<SpanId> {
        u64::from_str_radix(sv, 16).ok().map(SpanId)
    }
}

/// The id generator: one per process, an atomic counter fed through
/// [`splitmix64`]. Lock-free and wait-free on the request path.
pub struct IdGen {
    state: AtomicU64,
}

impl IdGen {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> IdGen {
        IdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// The production constructor. When `PROPHET_TRACE_SEED` is set the
    /// stream is `seed ^ fnv(process)` — deterministic per process name,
    /// distinct across a fleet started with the same seed — otherwise it
    /// is seeded from the clock and pid.
    pub fn from_env(process: &str) -> IdGen {
        let seed = match std::env::var("PROPHET_TRACE_SEED")
            .ok()
            .and_then(|sv| sv.parse::<u64>().ok())
        {
            Some(sv) => sv ^ fnv1a(process.as_bytes()),
            None => {
                let nanos = std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0);
                nanos ^ fnv1a(process.as_bytes()) ^ (u64::from(std::process::id()) << 32)
            }
        };
        IdGen::new(seed)
    }

    fn next_raw(&self) -> u64 {
        loop {
            let n = self.state.fetch_add(1, Ordering::Relaxed);
            let id = splitmix64(n);
            if id != 0 {
                return id;
            }
        }
    }

    /// Draw a fresh trace id.
    pub fn next_trace(&self) -> TraceId {
        TraceId(self.next_raw())
    }

    /// Draw a fresh span id.
    pub fn next_span(&self) -> SpanId {
        SpanId(self.next_raw())
    }
}

/// The decoded `x-prophet-trace` request header: which trace this
/// request belongs to and which remote span is its parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every hop shares.
    pub trace: TraceId,
    /// The sender's span that caused this request (the forward span).
    pub parent: SpanId,
}

impl TraceContext {
    /// The header value: `<trace hex>-<parent span hex>`.
    pub fn header_value(&self) -> String {
        format!("{}-{}", self.trace.hex(), self.parent.hex())
    }

    /// Parse a header value; `None` on anything malformed (a bad header
    /// starts a fresh trace rather than failing the request).
    pub fn parse(header: &str) -> Option<TraceContext> {
        let (t, p) = header.trim().split_once('-')?;
        Some(TraceContext {
            trace: TraceId::parse_hex(t)?,
            parent: SpanId::parse_hex(p)?,
        })
    }
}

/// One finished wall-clock span: a named interval of one request's life
/// inside one process.
#[derive(Clone, Debug)]
pub struct WallSpan {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub id: SpanId,
    /// Parent span id; `None` for a hop's root span with no inbound
    /// trace context.
    pub parent: Option<SpanId>,
    /// Stage name (`request`, `parse`, `queue_wait`, `predict`, ...).
    pub name: String,
    /// The process that recorded it, e.g. `shard@127.0.0.1:7177`.
    pub process: String,
    /// Start time as unix nanoseconds (wall clock, so spans from
    /// different processes align on one timeline).
    pub start_unix_nanos: u64,
    /// Duration in nanoseconds.
    pub dur_nanos: u64,
    /// Free-form `(key, value)` annotations.
    pub tags: Vec<(String, String)>,
}

impl WallSpan {
    /// JSON object form (also the JSONL wire format for stitching).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("trace", s(&self.trace.hex())), ("span", s(&self.id.hex()))];
        if let Some(p) = self.parent {
            fields.push(("parent", s(&p.hex())));
        }
        fields.push(("name", s(&self.name)));
        fields.push(("process", s(&self.process)));
        fields.push(("start_unix_nanos", Value::U64(self.start_unix_nanos)));
        fields.push(("dur_nanos", Value::U64(self.dur_nanos)));
        if !self.tags.is_empty() {
            fields.push((
                "tags",
                Value::Object(
                    self.tags
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                        .collect(),
                ),
            ));
        }
        obj(fields)
    }

    /// Parse the object form back; `None` if required fields are
    /// missing (a peer running an older build, say).
    pub fn from_value(v: &Value) -> Option<WallSpan> {
        let str_of = |name: &str| match v.get(name) {
            Some(Value::Str(sv)) => Some(sv.clone()),
            _ => None,
        };
        // Prefer the exact integer variant: unix-nano timestamps exceed
        // f64's 53-bit mantissa, and stitching must not jitter them.
        let u64_of = |name: &str| exact_u64(v.get(name)?);
        let tags = match v.get("tags") {
            Some(Value::Object(fields)) => fields
                .iter()
                .filter_map(|(k, tv)| match tv {
                    Value::Str(sv) => Some((k.clone(), sv.clone())),
                    _ => None,
                })
                .collect(),
            _ => Vec::new(),
        };
        Some(WallSpan {
            trace: TraceId::parse_hex(&str_of("trace")?)?,
            id: SpanId::parse_hex(&str_of("span")?)?,
            parent: str_of("parent").and_then(|p| SpanId::parse_hex(&p)),
            name: str_of("name")?,
            process: str_of("process")?,
            start_unix_nanos: u64_of("start_unix_nanos")?,
            dur_nanos: u64_of("dur_nanos")?,
            tags,
        })
    }
}

/// A per-request span buffer shared between the connection thread and
/// whichever batch worker serves the request. Contention is two threads
/// and the critical section is one `Vec::push`, so a plain mutex is
/// effectively uncontended ("lock-free-ish": no allocation or blocking
/// beyond that push).
#[derive(Clone, Default)]
pub struct SpanSink {
    spans: Arc<Mutex<Vec<WallSpan>>>,
}

impl SpanSink {
    /// An empty sink.
    pub fn new() -> SpanSink {
        SpanSink::default()
    }

    /// Append a finished span.
    pub fn push(&self, span: WallSpan) {
        self.spans.lock().expect("span sink poisoned").push(span);
    }

    /// Take every span recorded so far, leaving the sink empty (late
    /// pushes after a deadline timeout land in the empty sink and are
    /// dropped with it).
    pub fn drain(&self) -> Vec<WallSpan> {
        std::mem::take(&mut *self.spans.lock().expect("span sink poisoned"))
    }

    /// Number of spans currently buffered.
    pub fn len(&self) -> usize {
        self.spans.lock().expect("span sink poisoned").len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Linear region: values below `2^LINEAR_BITS` get one bucket each.
const LINEAR_BITS: u32 = 6;
/// Sub-buckets per octave above the linear region (`2^SUB_BITS`).
const SUB_BITS: u32 = 5;
const SUBS: u64 = 1 << SUB_BITS; // 32
const LINEAR: u64 = 1 << LINEAR_BITS; // 64
/// Total bucket count: the linear region plus 32 sub-buckets for each
/// of the octaves 2^6..2^63.
const NBUCKETS: usize = (LINEAR + (64 - LINEAR_BITS as u64) * SUBS) as usize;

/// A log-linear (HDR-style) latency histogram over `u64` nanoseconds.
///
/// Values below 64 are exact; above, each power-of-two octave is split
/// into 32 linear sub-buckets, so any quantile reads back within one
/// sub-bucket — a relative error of at most 1/32 (~3%) — while the whole
/// histogram is a fixed 15 KiB regardless of range. Buckets are
/// position-aligned across instances, so fleets merge bucket-wise
/// without loss ([`WallHistogram::merge`]).
#[derive(Clone)]
pub struct WallHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for WallHistogram {
    fn default() -> Self {
        WallHistogram::new()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < LINEAR {
        v as usize
    } else {
        let top = 63 - u64::from(v.leading_zeros()); // >= LINEAR_BITS
        let sub = (v >> (top - u64::from(SUB_BITS))) & (SUBS - 1);
        (LINEAR + (top - u64::from(LINEAR_BITS)) * SUBS + sub) as usize
    }
}

fn bucket_lower(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR {
        i
    } else {
        let oct = (i - LINEAR) / SUBS + u64::from(LINEAR_BITS);
        let sub = (i - LINEAR) % SUBS;
        (1u64 << oct) + (sub << (oct - u64::from(SUB_BITS)))
    }
}

fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= NBUCKETS {
        u64::MAX
    } else {
        bucket_lower(i + 1) - 1
    }
}

impl WallHistogram {
    /// An empty histogram.
    pub fn new() -> WallHistogram {
        WallHistogram {
            buckets: vec![0; NBUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value (nanoseconds by convention).
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `p` in `[0, 1]`: the lower bound of the
    /// bucket holding the `ceil(p·count)`-th observation, clamped to the
    /// observed min/max so p0/p100 are exact.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_lower(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Add another histogram bucket-wise (buckets are position-aligned
    /// by construction, so this is lossless).
    pub fn merge(&mut self, other: &WallHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `(lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), c))
            .collect()
    }

    /// JSON form, shape-compatible with [`crate::Histogram::to_value`]
    /// (plus `p99`), so fleet-level consumers can merge either kind via
    /// [`HistSnapshot`].
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("count", Value::U64(self.count)),
            ("sum", Value::U64(self.sum)),
            ("min", Value::U64(self.min())),
            ("max", Value::U64(self.max)),
            ("mean", Value::F64(self.mean())),
            ("p50", Value::U64(self.quantile(0.50))),
            ("p95", Value::U64(self.quantile(0.95))),
            ("p99", Value::U64(self.quantile(0.99))),
            (
                "buckets",
                Value::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, c)| Value::Array(vec![Value::U64(lo), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Prometheus exposition text for this histogram under `name`
    /// (already sanitised): cumulative `_bucket{le=...}` lines from the
    /// non-empty buckets, then `_sum` and `_count`.
    pub fn prometheus_text(&self, name: &str) -> String {
        let mut out = format!("# TYPE {name} histogram\n");
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper(i)
            ));
        }
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", self.count));
        out.push_str(&format!("{name}_sum {}\n", self.sum));
        out.push_str(&format!("{name}_count {}\n", self.count));
        out
    }
}

/// A histogram parsed back from rendered JSON, for fleet-level merging:
/// the router pulls each shard's `/v1/metrics`, folds same-named
/// histograms together bucket-wise, and re-renders. Works for both
/// [`WallHistogram`] and the log₂ [`crate::Histogram`] — what matters is
/// that same-named histograms across shards use the same bucketing, and
/// they do because every shard runs the same code.
#[derive(Clone, Debug, Default)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Observed minimum (meaningless when `count == 0`).
    pub min: u64,
    /// Observed maximum.
    pub max: u64,
    /// `(lower_bound, count)` pairs, ascending by bound.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Parse the JSON form emitted by either histogram type.
    pub fn from_value(v: &Value) -> Option<HistSnapshot> {
        let u64_of = |name: &str| exact_u64(v.get(name)?);
        let Some(Value::Array(raw)) = v.get("buckets") else {
            return None;
        };
        let mut buckets = Vec::with_capacity(raw.len());
        for pair in raw {
            let Value::Array(kv) = pair else { return None };
            let (Some(lo), Some(c)) = (
                kv.first().and_then(exact_u64),
                kv.get(1).and_then(exact_u64),
            ) else {
                return None;
            };
            buckets.push((lo, c));
        }
        Some(HistSnapshot {
            count: u64_of("count")?,
            sum: u64_of("sum")?,
            min: u64_of("min")?,
            max: u64_of("max")?,
            buckets,
        })
    }

    /// Fold another snapshot in, bucket-wise by lower bound.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for &(lo, c) in &other.buckets {
            match self.buckets.iter_mut().find(|(l, _)| *l == lo) {
                Some((_, total)) => *total += c,
                None => self.buckets.push((lo, c)),
            }
        }
        self.buckets.sort_unstable();
    }

    /// Quantile readout from the merged buckets (lower-bound semantics,
    /// like [`WallHistogram::quantile`]).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(lo, c) in &self.buckets {
            seen += c;
            if seen >= target {
                return lo.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Re-render in the shared JSON shape.
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("count", Value::U64(self.count)),
            ("sum", Value::U64(self.sum)),
            (
                "min",
                Value::U64(if self.count == 0 { 0 } else { self.min }),
            ),
            ("max", Value::U64(self.max)),
            (
                "mean",
                Value::F64(if self.count == 0 {
                    0.0
                } else {
                    self.sum as f64 / self.count as f64
                }),
            ),
            ("p50", Value::U64(self.quantile(0.50))),
            ("p95", Value::U64(self.quantile(0.95))),
            ("p99", Value::U64(self.quantile(0.99))),
            (
                "buckets",
                Value::Array(
                    self.buckets
                        .iter()
                        .map(|&(lo, c)| Value::Array(vec![Value::U64(lo), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Export spans as Chrome Trace Event JSON (Perfetto-loadable): one
/// `pid` per recording process, complete (`X`) events with microsecond
/// timestamps relative to the earliest span, ids and tags in `args`.
/// Spans are sorted by `(start, process, id)` first, so the same span
/// set always exports byte-identical JSON.
pub fn spans_chrome_trace(spans: &[WallSpan]) -> String {
    let mut spans: Vec<&WallSpan> = spans.iter().collect();
    spans.sort_by(|a, b| {
        (a.start_unix_nanos, &a.process, a.id).cmp(&(b.start_unix_nanos, &b.process, b.id))
    });
    let mut processes: Vec<&str> = spans.iter().map(|sp| sp.process.as_str()).collect();
    processes.sort_unstable();
    processes.dedup();
    let pid_of = |p: &str| processes.iter().position(|q| *q == p).unwrap_or(0) as u64;
    let t0 = spans
        .iter()
        .map(|sp| sp.start_unix_nanos)
        .min()
        .unwrap_or(0);

    let mut events = Vec::new();
    for (pid, name) in processes.iter().enumerate() {
        events.push(obj(vec![
            ("name", s("process_name")),
            ("ph", s("M")),
            ("pid", Value::U64(pid as u64)),
            ("tid", Value::U64(0)),
            ("args", obj(vec![("name", s(name))])),
        ]));
    }
    for sp in &spans {
        let mut args = vec![("trace", s(&sp.trace.hex())), ("span", s(&sp.id.hex()))];
        if let Some(p) = sp.parent {
            args.push(("parent", s(&p.hex())));
        }
        for (k, v) in &sp.tags {
            args.push((k.as_str(), s(v)));
        }
        events.push(obj(vec![
            ("name", s(&sp.name)),
            ("ph", s("X")),
            ("ts", Value::U64((sp.start_unix_nanos - t0) / 1_000)),
            ("dur", Value::U64(sp.dur_nanos / 1_000)),
            ("pid", Value::U64(pid_of(&sp.process))),
            ("tid", Value::U64(0)),
            ("args", obj(args)),
        ]));
    }

    let trace_hex = spans.first().map(|sp| sp.trace.hex()).unwrap_or_default();
    let root = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", s("ms")),
        (
            "otherData",
            obj(vec![
                ("trace", s(&trace_hex)),
                ("spans", Value::U64(spans.len() as u64)),
                ("epoch_unix_nanos", Value::U64(t0)),
            ]),
        ),
    ]);
    serde_json::to_string_pretty(&root).expect("serialise chrome trace")
}

/// Export spans as JSONL, one [`WallSpan::to_value`] object per line —
/// the access-log span format and the stitching wire format.
pub fn spans_jsonl(spans: &[WallSpan]) -> String {
    let mut out = String::new();
    for sp in spans {
        out.push_str(&serde_json::to_string(&sp.to_value()).expect("serialise span"));
        out.push('\n');
    }
    out
}

/// Parse a JSONL span dump back (lines that fail to parse are skipped:
/// peers may be older builds).
pub fn spans_from_jsonl(text: &str) -> Vec<WallSpan> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<Value>(l).ok())
        .filter_map(|v| WallSpan::from_value(&v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_ids_are_deterministic_and_nonzero() {
        let a = IdGen::new(42);
        let b = IdGen::new(42);
        let ids_a: Vec<u64> = (0..64).map(|_| a.next_span().0).collect();
        let ids_b: Vec<u64> = (0..64).map(|_| b.next_span().0).collect();
        assert_eq!(ids_a, ids_b, "same seed must yield the same stream");
        assert!(ids_a.iter().all(|&id| id != 0));
        let mut dedup = ids_a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids_a.len(), "ids must not collide in-stream");
    }

    #[test]
    fn trace_context_roundtrips_through_header() {
        let ctx = TraceContext {
            trace: TraceId(0x0123_4567_89ab_cdef),
            parent: SpanId(0xfeed_face_dead_beef),
        };
        let header = ctx.header_value();
        assert_eq!(header, "0123456789abcdef-feedfacedeadbeef");
        assert_eq!(TraceContext::parse(&header), Some(ctx));
        assert_eq!(TraceContext::parse("nonsense"), None);
        assert_eq!(TraceContext::parse(""), None);
    }

    #[test]
    fn bucket_mapping_is_monotone_and_self_inverse() {
        let mut last = 0usize;
        for v in [0u64, 1, 63, 64, 65, 100, 1_000, 1_000_000, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(i >= last, "index must be monotone in value");
            last = i;
            assert!(bucket_lower(i) <= v && v <= bucket_upper(i));
        }
        for i in [0usize, 63, 64, 95, 96, 500, NBUCKETS - 1] {
            assert_eq!(bucket_index(bucket_lower(i)), i);
        }
    }

    #[test]
    fn wall_histogram_quantiles_are_tight_and_monotone() {
        let mut h = WallHistogram::new();
        for v in 1..=1000u64 {
            h.observe(v * 1_000); // 1ms .. 1000ms in µs-scale units
        }
        assert_eq!(h.count(), 1000);
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99 && p99 <= h.max());
        // Log-linear error bound: within one 1/32 sub-bucket.
        assert!((p50 as f64 - 500_000.0).abs() / 500_000.0 < 0.04, "{p50}");
        assert!((p95 as f64 - 950_000.0).abs() / 950_000.0 < 0.04, "{p95}");
        assert!((p99 as f64 - 990_000.0).abs() / 990_000.0 < 0.04, "{p99}");
    }

    #[test]
    fn wall_histogram_merge_equals_combined_stream() {
        let mut a = WallHistogram::new();
        let mut b = WallHistogram::new();
        let mut both = WallHistogram::new();
        for i in 0..500u64 {
            let v = splitmix64(i) % 10_000_000;
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        assert_eq!(a.nonzero_buckets(), both.nonzero_buckets());
        for p in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(p), both.quantile(p));
        }
    }

    #[test]
    fn hist_snapshot_merges_rendered_json_bucketwise() {
        let mut a = WallHistogram::new();
        let mut b = WallHistogram::new();
        for v in [10u64, 200, 3_000, 40_000] {
            a.observe(v);
        }
        for v in [10u64, 500_000, 6_000_000] {
            b.observe(v);
        }
        let mut snap = HistSnapshot::from_value(&a.to_value()).expect("snapshot a");
        snap.merge(&HistSnapshot::from_value(&b.to_value()).expect("snapshot b"));
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, a.sum() + b.sum());
        assert_eq!(snap.min, 10);
        assert_eq!(snap.max, 6_000_000);
        // The shared value 10 landed in one merged bucket of count 2.
        assert!(snap.buckets.iter().any(|&(lo, c)| lo == 10 && c == 2));
        let rendered = snap.to_value();
        assert!(rendered.get("p99").is_some());
    }

    fn span(
        trace: u64,
        id: u64,
        parent: Option<u64>,
        name: &str,
        process: &str,
        start: u64,
        dur: u64,
    ) -> WallSpan {
        WallSpan {
            trace: TraceId(trace),
            id: SpanId(id),
            parent: parent.map(SpanId),
            name: name.to_string(),
            process: process.to_string(),
            start_unix_nanos: start,
            dur_nanos: dur,
            tags: vec![("status".to_string(), "200".to_string())],
        }
    }

    #[test]
    fn span_roundtrips_through_jsonl() {
        let spans = vec![
            span(7, 1, None, "request", "router@r", 1_000_000, 900_000),
            span(7, 2, Some(1), "forward", "router@r", 1_100_000, 700_000),
            span(7, 3, Some(2), "request", "shard@a", 1_200_000, 500_000),
        ];
        let jsonl = spans_jsonl(&spans);
        assert_eq!(jsonl.lines().count(), 3);
        let back = spans_from_jsonl(&jsonl);
        assert_eq!(back.len(), 3);
        assert_eq!(back[1].parent, Some(SpanId(1)));
        assert_eq!(back[2].process, "shard@a");
        assert_eq!(back[0].tags, spans[0].tags);
    }

    #[test]
    fn chrome_trace_export_is_valid_and_deterministic() {
        let spans = vec![
            span(7, 3, Some(2), "request", "shard@a", 1_200_000, 500_000),
            span(7, 1, None, "request", "router@r", 1_000_000, 900_000),
            span(7, 2, Some(1), "forward", "router@r", 1_100_000, 700_000),
        ];
        let json = spans_chrome_trace(&spans);
        let mut reordered = spans.clone();
        reordered.rotate_left(1);
        assert_eq!(
            json,
            spans_chrome_trace(&reordered),
            "export must not depend on insertion order"
        );
        let v: Value = serde_json::from_str(&json).expect("chrome trace parses");
        let Some(Value::Array(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        // 2 process_name metadata events + 3 spans.
        assert_eq!(events.len(), 5);
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(Value::Str(p)) if p == "X"))
            .collect();
        assert_eq!(xs.len(), 3);
        // Earliest span anchors ts = 0; all in the same trace.
        assert!(xs
            .iter()
            .any(|e| matches!(e.get("ts"), Some(Value::U64(0)))));
        for e in xs {
            let trace = e.get("args").and_then(|a| a.get("trace"));
            assert!(matches!(trace, Some(Value::Str(t)) if t == "0000000000000007"));
        }
    }
}
