//! Metrics registry and trace-derived metrics.
//!
//! [`MetricsRegistry`] is a plain name→value store (counters, gauges,
//! log₂ histograms). [`TraceMetrics`] replays a [`Recorder`]'s event
//! stream and derives the aggregates the paper's analysis sections care
//! about: per-core utilisation, lock-wait distribution and per-lock
//! contention, steal success rate, and the DRAM bandwidth-occupancy
//! time series. All containers are ordered (`BTreeMap` / `Vec`), so
//! serialising a registry is deterministic.

use std::collections::BTreeMap;

use serde::Value;

use crate::record::{EventKind, Recorder};

/// A log₂-bucketed histogram of `u64` samples (cycle durations).
///
/// Bucket `i` holds samples `v` with `bit_len(v) == i`, i.e. bucket 0 is
/// exactly `0`, bucket 1 is `1`, bucket 2 is `2..=3`, and so on.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        let idx = (64 - v.leading_zeros()) as usize;
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate p-quantile (`0.0..=1.0`) from bucket midpoints.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint of bucket i: [2^(i-1), 2^i).
                return if i == 0 {
                    0
                } else {
                    (1u64 << (i - 1)) + (1u64 << (i - 1)) / 2
                };
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }

    /// JSON representation (count/sum/min/max/mean/p50/p95 + buckets).
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("count".into(), Value::U64(self.count)),
            ("sum".into(), Value::U64(self.sum)),
            ("min".into(), Value::U64(self.min())),
            ("max".into(), Value::U64(self.max)),
            ("mean".into(), Value::F64(self.mean())),
            ("p50".into(), Value::U64(self.quantile(0.50))),
            ("p95".into(), Value::U64(self.quantile(0.95))),
            (
                "buckets".into(),
                Value::Array(
                    self.nonzero_buckets()
                        .into_iter()
                        .map(|(lo, c)| Value::Array(vec![Value::U64(lo), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// Name→value metrics store with deterministic iteration order.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter (created at 0).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Read a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Read a gauge (`None` when absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record a sample into a named histogram (created empty).
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(v);
    }

    /// Read a histogram (`None` when absent).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// Install a pre-built histogram under `name`, replacing any
    /// existing one. Lets producers that aggregate samples elsewhere
    /// (e.g. the serve daemon's latency recorders) publish snapshots
    /// into a registry without replaying every observation.
    pub fn insert_histogram(&mut self, name: &str, h: Histogram) {
        self.histograms.insert(name.to_string(), h);
    }

    /// JSON representation: `{counters: {...}, gauges: {...}, histograms: {...}}`.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "counters".into(),
                Value::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Value::Object(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Value::F64(v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Value::Object(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_value()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// One interval during which a thread occupied a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreInterval {
    /// Core index.
    pub core: u32,
    /// Thread that ran.
    pub thread: u32,
    /// Interval start (cycles).
    pub start: u64,
    /// Interval end (cycles).
    pub end: u64,
}

/// Reconstruct per-core busy intervals from the scheduler events.
///
/// An interval opens at `ThreadDispatch` and closes at the next
/// preempt/yield/block/exit on the same core. A still-open interval is
/// closed at the trace's final timestamp.
pub fn core_intervals(rec: &Recorder) -> Vec<CoreInterval> {
    let mut open: BTreeMap<u32, (u32, u64)> = BTreeMap::new();
    let mut out = Vec::new();
    let mut last_t = 0;
    for ev in rec.events() {
        last_t = last_t.max(ev.t);
        match ev.kind {
            EventKind::ThreadDispatch { core, thread } => {
                // A dangling open interval on this core (lost close due to
                // ring wrap) is closed at the new dispatch.
                if let Some((th, start)) = open.insert(core, (thread, ev.t)) {
                    out.push(CoreInterval {
                        core,
                        thread: th,
                        start,
                        end: ev.t,
                    });
                }
            }
            EventKind::ThreadPreempt { core, thread }
            | EventKind::ThreadYield { core, thread }
            | EventKind::ThreadBlock { core, thread }
            | EventKind::ThreadExit { core, thread } => {
                if let Some((th, start)) = open.remove(&core) {
                    let th = if th == thread { th } else { thread };
                    out.push(CoreInterval {
                        core,
                        thread: th,
                        start,
                        end: ev.t,
                    });
                }
            }
            _ => {}
        }
    }
    for (core, (thread, start)) in open {
        out.push(CoreInterval {
            core,
            thread,
            start,
            end: last_t,
        });
    }
    out.sort_by_key(|iv| (iv.start, iv.core, iv.end));
    out
}

/// Contention statistics for one lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStat {
    /// Successful acquisitions.
    pub acquires: u64,
    /// Acquisitions that had to wait first.
    pub waits: u64,
    /// Total cycles spent waiting across all threads.
    pub total_wait: u64,
}

/// Aggregates derived from one recorded run.
#[derive(Debug, Clone)]
pub struct TraceMetrics {
    /// Per-event-kind counts and headline gauges.
    pub registry: MetricsRegistry,
    /// Number of cores the run simulated.
    pub cores: u32,
    /// Virtual end time of the trace (cycles).
    pub elapsed: u64,
    /// Busy cycles per core, indexed by core id.
    pub core_busy: Vec<u64>,
    /// Fraction of cores busy per time bucket (at most
    /// [`TIMELINE_BUCKETS`] buckets spanning `0..elapsed`).
    pub utilization_timeline: Vec<f64>,
    /// Distribution of individual lock-wait durations.
    pub lock_wait: Histogram,
    /// Per-lock contention, keyed by lock id.
    pub locks: BTreeMap<u32, LockStat>,
    /// `(t, active, omega_milli)` DRAM-rate recomputation series.
    pub bandwidth: Vec<(u64, u32, u64)>,
}

/// Buckets in [`TraceMetrics::utilization_timeline`].
pub const TIMELINE_BUCKETS: usize = 60;

impl TraceMetrics {
    /// Derive metrics from a recorded run on `cores` simulated cores.
    pub fn from_recorder(rec: &Recorder, cores: u32) -> Self {
        let mut registry = MetricsRegistry::new();
        let mut elapsed = 0u64;
        let mut locks: BTreeMap<u32, LockStat> = BTreeMap::new();
        let mut lock_wait = Histogram::new();
        // (lock, thread) -> wait-start time.
        let mut waiting: BTreeMap<(u32, u32), u64> = BTreeMap::new();
        let mut bandwidth = Vec::new();
        let mut steal_attempts = 0u64;
        let mut steal_hits = 0u64;

        for ev in rec.events() {
            elapsed = elapsed.max(ev.t);
            registry.inc(&format!("events.{}", ev.kind.name()), 1);
            match ev.kind {
                EventKind::LockWait { lock, thread } => {
                    waiting.insert((lock, thread), ev.t);
                    locks.entry(lock).or_default().waits += 1;
                }
                EventKind::LockAcquire { lock, thread } => {
                    let st = locks.entry(lock).or_default();
                    st.acquires += 1;
                    if let Some(start) = waiting.remove(&(lock, thread)) {
                        let wait = ev.t.saturating_sub(start);
                        st.total_wait += wait;
                        lock_wait.observe(wait);
                        registry.observe("lock_wait_cycles", wait);
                    }
                }
                EventKind::DramRate {
                    active,
                    omega_milli,
                } => {
                    bandwidth.push((ev.t, active, omega_milli));
                }
                EventKind::StealAttempt { success, .. } => {
                    steal_attempts += 1;
                    if success {
                        steal_hits += 1;
                    }
                }
                _ => {}
            }
        }

        let intervals = core_intervals(rec);
        let ncores = cores.max(intervals.iter().map(|iv| iv.core + 1).max().unwrap_or(0)) as usize;
        let mut core_busy = vec![0u64; ncores];
        let mut timeline = vec![0u64; TIMELINE_BUCKETS];
        // Ceiling division so the last bucket always covers `elapsed`
        // (a truncated width would leave a tail no bucket advances past).
        let bucket_w = elapsed.div_ceil(TIMELINE_BUCKETS as u64).max(1);
        for iv in &intervals {
            core_busy[iv.core as usize] += iv.end - iv.start;
            // Spread busy cycles over the buckets the interval covers.
            let mut t = iv.start;
            while t < iv.end {
                let b = ((t / bucket_w) as usize).min(TIMELINE_BUCKETS - 1);
                let bucket_end = ((b as u64) + 1) * bucket_w;
                let upto = iv.end.min(bucket_end);
                timeline[b] += upto - t;
                t = upto;
            }
        }
        // Normalise by each bucket's actually-covered width: the final
        // bucket may only partially overlap `0..elapsed`, and buckets
        // entirely past it are dropped.
        let used = if elapsed == 0 {
            0
        } else {
            elapsed.div_ceil(bucket_w) as usize
        };
        let utilization_timeline: Vec<f64> = timeline[..used.min(TIMELINE_BUCKETS)]
            .iter()
            .enumerate()
            .map(|(b, &busy)| {
                let width = bucket_w.min(elapsed - b as u64 * bucket_w);
                let denom = (width * ncores.max(1) as u64) as f64;
                (busy as f64 / denom).min(1.0)
            })
            .collect();

        if steal_attempts > 0 {
            registry.set_gauge(
                "steal_success_rate",
                steal_hits as f64 / steal_attempts as f64,
            );
        }
        let total_busy: u64 = core_busy.iter().sum();
        if elapsed > 0 && ncores > 0 {
            registry.set_gauge(
                "core_utilization",
                total_busy as f64 / (elapsed as f64 * ncores as f64),
            );
        }
        if elapsed > 0 {
            registry.set_gauge(
                "lock_wait_fraction",
                lock_wait.sum() as f64 / elapsed as f64,
            );
        }

        TraceMetrics {
            registry,
            cores: ncores as u32,
            elapsed,
            core_busy,
            utilization_timeline,
            lock_wait,
            locks,
            bandwidth,
        }
    }

    /// Overall core utilisation in `0.0..=1.0`.
    pub fn utilization(&self) -> f64 {
        if self.elapsed == 0 || self.core_busy.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.core_busy.iter().sum();
        busy as f64 / (self.elapsed as f64 * self.core_busy.len() as f64)
    }

    /// Locks ordered by total wait, most contended first.
    pub fn hottest_locks(&self) -> Vec<(u32, LockStat)> {
        let mut v: Vec<(u32, LockStat)> = self.locks.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by(|a, b| b.1.total_wait.cmp(&a.1.total_wait).then(a.0.cmp(&b.0)));
        v
    }

    /// Peak concurrently-memory-active packet count seen by the solver.
    pub fn peak_dram_active(&self) -> u32 {
        self.bandwidth.iter().map(|&(_, a, _)| a).max().unwrap_or(0)
    }

    /// JSON representation of the derived metrics.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("cores".into(), Value::U64(self.cores as u64)),
            ("elapsed_cycles".into(), Value::U64(self.elapsed)),
            ("utilization".into(), Value::F64(self.utilization())),
            (
                "core_busy_cycles".into(),
                Value::Array(self.core_busy.iter().map(|&b| Value::U64(b)).collect()),
            ),
            (
                "utilization_timeline".into(),
                Value::Array(
                    self.utilization_timeline
                        .iter()
                        .map(|&u| Value::F64(u))
                        .collect(),
                ),
            ),
            ("lock_wait".into(), self.lock_wait.to_value()),
            (
                "locks".into(),
                Value::Object(
                    self.locks
                        .iter()
                        .map(|(id, st)| {
                            (
                                id.to_string(),
                                Value::Object(vec![
                                    ("acquires".into(), Value::U64(st.acquires)),
                                    ("waits".into(), Value::U64(st.waits)),
                                    ("total_wait".into(), Value::U64(st.total_wait)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "bandwidth".into(),
                Value::Array(
                    self.bandwidth
                        .iter()
                        .map(|&(t, a, o)| {
                            Value::Array(vec![Value::U64(t), Value::U64(a as u64), Value::U64(o)])
                        })
                        .collect(),
                ),
            ),
            (
                "peak_dram_active".into(),
                Value::U64(self.peak_dram_active() as u64),
            ),
            ("registry".into(), self.registry.to_value()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventKind as K, Recorder};

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!(h.mean() > 184.0 && h.mean() < 185.0);
        assert!(h.quantile(1.0) >= h.quantile(0.5));
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn registry_counts_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.inc("a", 2);
        m.inc("a", 3);
        m.set_gauge("g", 0.5);
        m.observe("h", 7);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g"), Some(0.5));
        assert_eq!(m.histogram("h").unwrap().count(), 1);
    }

    #[test]
    fn core_intervals_reconstruct() {
        let mut r = Recorder::new();
        r.record(0, K::ThreadDispatch { core: 0, thread: 1 });
        r.record(10, K::ThreadPreempt { core: 0, thread: 1 });
        r.record(10, K::ThreadDispatch { core: 0, thread: 2 });
        r.record(25, K::ThreadExit { core: 0, thread: 2 });
        r.record(5, K::ThreadDispatch { core: 1, thread: 3 });
        // Core 1 never closes: closed at trace end (t=25).
        let ivs = core_intervals(&r);
        assert_eq!(ivs.len(), 3);
        assert!(ivs.contains(&CoreInterval {
            core: 0,
            thread: 1,
            start: 0,
            end: 10
        }));
        assert!(ivs.contains(&CoreInterval {
            core: 0,
            thread: 2,
            start: 10,
            end: 25
        }));
        assert!(ivs.contains(&CoreInterval {
            core: 1,
            thread: 3,
            start: 5,
            end: 25
        }));
    }

    #[test]
    fn lock_wait_pairs_up() {
        let mut r = Recorder::new();
        r.record(0, K::LockWait { lock: 7, thread: 1 });
        r.record(40, K::LockAcquire { lock: 7, thread: 1 });
        r.record(50, K::LockAcquire { lock: 7, thread: 2 }); // uncontended
        let m = TraceMetrics::from_recorder(&r, 2);
        let st = m.locks[&7];
        assert_eq!(st.acquires, 2);
        assert_eq!(st.waits, 1);
        assert_eq!(st.total_wait, 40);
        assert_eq!(m.lock_wait.count(), 1);
        assert_eq!(m.lock_wait.sum(), 40);
    }

    #[test]
    fn utilization_full_when_all_cores_busy() {
        let mut r = Recorder::new();
        for c in 0..2 {
            r.record(0, K::ThreadDispatch { core: c, thread: c });
            r.record(100, K::ThreadExit { core: c, thread: c });
        }
        let m = TraceMetrics::from_recorder(&r, 2);
        assert!((m.utilization() - 1.0).abs() < 1e-9);
        assert_eq!(m.core_busy, vec![100, 100]);
        assert!(m.utilization_timeline.iter().all(|&u| u > 0.99));
    }
}
