#![warn(missing_docs)]

//! `prophet-obs` — the observability layer for Parallel Prophet.
//!
//! The simulator stack's end-of-run aggregates (`machsim::RunStats`) say
//! *how much* speedup was lost; this crate records *where it went over
//! virtual time* so burden factors, lock serialisation, imbalance and
//! bandwidth saturation (the paper's Figs. 2, 5 and 7) can be inspected
//! event by event:
//!
//! * [`Recorder`] — a preallocated ring-buffer recorder for typed
//!   [`EventKind`]s, timestamped with the simulator's **virtual** clock.
//!   Everything is deterministic: two same-seed runs produce
//!   byte-identical exports, so traces double as golden test files.
//! * [`metrics`] — a registry of counters, gauges and histograms plus
//!   derived time series (per-core utilisation, lock-wait distribution,
//!   DRAM-bandwidth occupancy) computed from the event stream.
//! * [`export`] — Chrome Trace Event / Perfetto JSON (one track per
//!   simulated core and per runtime worker), a compact JSONL dump, and a
//!   plain-text timeline summary for terminals.
//! * [`wallspan`] — **wall-clock** request tracing for the serve fleet:
//!   trace/span ids that propagate across processes, a log-linear
//!   latency histogram with p50/p95/p99 readout, and Chrome-trace/JSONL
//!   span exporters.
//!
//! Producers (machsim, omp-rt, cilk-rt, ffemu, synthemu, tracer) gate
//! their instrumentation behind an `obs` cargo feature, so disabling the
//! feature removes this crate — and every recording call site — from the
//! build entirely.

pub mod export;
pub mod metrics;
pub mod record;
pub mod wallspan;

pub use export::{chrome_trace_json, jsonl_dump, prometheus_text, timeline_summary};
pub use metrics::{Histogram, MetricsRegistry, TraceMetrics};
pub use record::{Event, EventKind, ObsHandle, ObsLevel, Recorder, SpanKind};
pub use wallspan::{
    HistSnapshot, IdGen, SpanId, SpanSink, TraceContext, TraceId, WallHistogram, WallSpan,
};
