//! The event recorder: typed events in a preallocated ring buffer,
//! timestamped with the simulator's virtual clock.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Paired begin/end span categories recorded by producers that track
//  intervals rather than instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A `PAR_SEC` annotation interval (tracer).
    AnnotationSec,
    /// A `PAR_TASK` annotation interval (tracer).
    AnnotationTask,
    /// A `LOCK` annotation interval (tracer).
    AnnotationLock,
    /// One parallel-region instance (runtime layer).
    Region,
    /// One emulated program-tree section (ffemu / synthemu).
    EmuSection,
}

impl SpanKind {
    /// Stable lowercase name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::AnnotationSec => "annotation_sec",
            SpanKind::AnnotationTask => "annotation_task",
            SpanKind::AnnotationLock => "annotation_lock",
            SpanKind::Region => "region",
            SpanKind::EmuSection => "emu_section",
        }
    }
}

/// One structured event. Identifier-style fields (`thread`, `core`,
/// `lock`, …) are raw u32 ids; `label` fields are indexes into the
/// recorder's interned-string table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// A thread was created.
    ThreadSpawn {
        /// The new thread.
        thread: u32,
    },
    /// The OS scheduler placed a thread on a core.
    ThreadDispatch {
        /// Core index.
        core: u32,
        /// Dispatched thread.
        thread: u32,
    },
    /// A thread lost its core at quantum expiry.
    ThreadPreempt {
        /// Core index.
        core: u32,
        /// Preempted thread.
        thread: u32,
    },
    /// A thread yielded its core voluntarily.
    ThreadYield {
        /// Core index.
        core: u32,
        /// Yielding thread.
        thread: u32,
    },
    /// A thread blocked (lock wait, barrier wait, or park).
    ThreadBlock {
        /// Core index it vacated.
        core: u32,
        /// Blocking thread.
        thread: u32,
    },
    /// A parked thread was unparked (made ready) by another thread.
    ThreadUnpark {
        /// The woken thread.
        thread: u32,
    },
    /// A thread exited.
    ThreadExit {
        /// Core index it vacated.
        core: u32,
        /// Exiting thread.
        thread: u32,
    },
    /// A mutex was acquired (uncontended, or after a wait).
    LockAcquire {
        /// Lock id.
        lock: u32,
        /// Acquiring thread.
        thread: u32,
    },
    /// A mutex acquisition had to wait.
    LockWait {
        /// Lock id.
        lock: u32,
        /// Waiting thread.
        thread: u32,
    },
    /// A mutex was released.
    LockRelease {
        /// Lock id.
        lock: u32,
        /// Releasing thread.
        thread: u32,
    },
    /// A thread arrived at a barrier.
    BarrierEnter {
        /// Barrier id.
        barrier: u32,
        /// Arriving thread.
        thread: u32,
    },
    /// The last party arrived; the barrier released its waiters.
    BarrierRelease {
        /// Barrier id.
        barrier: u32,
        /// Number of threads woken (excludes the releasing arrival).
        woken: u32,
    },
    /// The DRAM rate solver recomputed shared-bandwidth stretch factors.
    DramRate {
        /// Memory-active packets participating.
        active: u32,
        /// Effective per-miss stall in milli-cycles (ω × 1000).
        omega_milli: u64,
    },
    /// A worksharing chunk was handed to a worker (OpenMP runtime).
    ChunkDispatch {
        /// Worker rank within the team.
        worker: u32,
        /// First task index of the chunk.
        lo: u32,
        /// One past the last task index.
        hi: u32,
    },
    /// A work-stealing attempt (Cilk runtime).
    StealAttempt {
        /// The stealing worker.
        thief: u32,
        /// The victim worker.
        victim: u32,
        /// Whether a strand was actually taken.
        success: bool,
    },
    /// A task was pushed to a worker's deque (Cilk spawn).
    TaskSpawn {
        /// The spawning worker.
        worker: u32,
    },
    /// A join completed and its continuation resumed (Cilk sync).
    TaskSync {
        /// The resuming worker.
        worker: u32,
    },
    /// The fast-forward emulator popped its priority heap.
    EmuHeapPop {
        /// The emulated CPU whose clock was popped.
        cpu: u32,
    },
    /// Profiling overhead subtracted from an emulated interval.
    OverheadSubtract {
        /// Cycles removed.
        cycles: u64,
    },
    /// Begin of a paired interval.
    SpanBegin {
        /// Interval category.
        kind: SpanKind,
        /// Interned label (see [`Recorder::intern`]).
        label: u32,
        /// Owning thread/worker id (`u32::MAX` when not applicable).
        thread: u32,
    },
    /// End of a paired interval.
    SpanEnd {
        /// Interval category.
        kind: SpanKind,
        /// Interned label.
        label: u32,
        /// Owning thread/worker id (`u32::MAX` when not applicable).
        thread: u32,
    },
}

impl EventKind {
    /// Stable snake_case name used by exporters and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ThreadSpawn { .. } => "thread_spawn",
            EventKind::ThreadDispatch { .. } => "thread_dispatch",
            EventKind::ThreadPreempt { .. } => "thread_preempt",
            EventKind::ThreadYield { .. } => "thread_yield",
            EventKind::ThreadBlock { .. } => "thread_block",
            EventKind::ThreadUnpark { .. } => "thread_unpark",
            EventKind::ThreadExit { .. } => "thread_exit",
            EventKind::LockAcquire { .. } => "lock_acquire",
            EventKind::LockWait { .. } => "lock_wait",
            EventKind::LockRelease { .. } => "lock_release",
            EventKind::BarrierEnter { .. } => "barrier_enter",
            EventKind::BarrierRelease { .. } => "barrier_release",
            EventKind::DramRate { .. } => "dram_rate",
            EventKind::ChunkDispatch { .. } => "chunk_dispatch",
            EventKind::StealAttempt { .. } => "steal_attempt",
            EventKind::TaskSpawn { .. } => "task_spawn",
            EventKind::TaskSync { .. } => "task_sync",
            EventKind::EmuHeapPop { .. } => "emu_heap_pop",
            EventKind::OverheadSubtract { .. } => "overhead_subtract",
            EventKind::SpanBegin { .. } => "span_begin",
            EventKind::SpanEnd { .. } => "span_end",
        }
    }

    /// The minimum recording level at which this kind is kept.
    pub fn level(&self) -> ObsLevel {
        match self {
            // High-frequency detail: only at Full.
            EventKind::ChunkDispatch { .. }
            | EventKind::StealAttempt { .. }
            | EventKind::TaskSpawn { .. }
            | EventKind::EmuHeapPop { .. }
            | EventKind::DramRate { .. }
            | EventKind::OverheadSubtract { .. } => ObsLevel::Full,
            // Everything else is scheduler/sync level.
            _ => ObsLevel::Sync,
        }
    }
}

/// Runtime recording verbosity. Producers also honour the compile-time
/// `obs` feature; this level filters within an obs-enabled build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ObsLevel {
    /// Record nothing (an attached recorder can be muted).
    Off,
    /// Scheduler and synchronisation events only.
    Sync,
    /// Everything, including per-chunk / per-steal / per-heap-pop detail.
    #[default]
    Full,
}

/// A timestamped event. `t` is virtual cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time in cycles.
    pub t: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Ring-buffer event recorder.
///
/// The buffer is preallocated at construction; when it fills, the oldest
/// events are overwritten and `dropped()` counts the loss. Everything is
/// deterministic — insertion order is the simulator's event order, and
/// labels are interned in first-seen order.
#[derive(Debug)]
pub struct Recorder {
    buf: Vec<Event>,
    /// Index of the logically-first event once the buffer has wrapped.
    head: usize,
    wrapped: bool,
    dropped: u64,
    level: ObsLevel,
    labels: Vec<String>,
    label_index: HashMap<String, u32>,
}

/// Default ring capacity: roomy enough for full traces of the built-in
/// workloads while staying allocation-free during a run.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

impl Recorder {
    /// A recorder with the given ring capacity (min 16).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(16);
        Recorder {
            buf: Vec::with_capacity(capacity),
            head: 0,
            wrapped: false,
            dropped: 0,
            level: ObsLevel::Full,
            labels: Vec::new(),
            label_index: HashMap::new(),
        }
    }

    /// A recorder with [`DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Set the runtime recording level.
    pub fn set_level(&mut self, level: ObsLevel) {
        self.level = level;
    }

    /// The runtime recording level.
    pub fn level(&self) -> ObsLevel {
        self.level
    }

    /// Record an event at virtual time `t` (dropped when below level).
    pub fn record(&mut self, t: u64, kind: EventKind) {
        if kind.level() > self.level {
            return;
        }
        let ev = Event { t, kind };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            // Overwrite the oldest slot.
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.buf.len();
            self.wrapped = true;
            self.dropped += 1;
        }
    }

    /// Intern a label, returning its stable index.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.label_index.get(label) {
            return id;
        }
        let id = self.labels.len() as u32;
        self.labels.push(label.to_string());
        self.label_index.insert(label.to_string(), id);
        id
    }

    /// Resolve an interned label.
    pub fn label(&self, id: u32) -> &str {
        self.labels
            .get(id as usize)
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Events in chronological (insertion) order.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        let (tail, head) = if self.wrapped {
            let (a, b) = self.buf.split_at(self.head);
            (b, a)
        } else {
            (&self.buf[..], &self.buf[..0])
        };
        tail.iter().chain(head.iter())
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded (or everything was filtered).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove all events (capacity and labels are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
        self.wrapped = false;
        self.dropped = 0;
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared handle to a recorder. The simulator stack is single-threaded,
/// so `Rc<RefCell<…>>` is sufficient and cheap to clone into every
/// producer (machine, runtimes, emulators, tracer).
#[derive(Debug, Clone)]
pub struct ObsHandle(Rc<RefCell<Recorder>>);

impl ObsHandle {
    /// Wrap a recorder for sharing.
    pub fn new(rec: Recorder) -> Self {
        ObsHandle(Rc::new(RefCell::new(rec)))
    }

    /// Record an event at virtual time `t`.
    #[inline]
    pub fn record(&self, t: u64, kind: EventKind) {
        self.0.borrow_mut().record(t, kind);
    }

    /// Intern a label through the handle.
    pub fn intern(&self, label: &str) -> u32 {
        self.0.borrow_mut().intern(label)
    }

    /// Run `f` with shared access to the recorder.
    pub fn with<R>(&self, f: impl FnOnce(&Recorder) -> R) -> R {
        f(&self.0.borrow())
    }

    /// Run `f` with exclusive access to the recorder.
    pub fn with_mut<R>(&self, f: impl FnOnce(&mut Recorder) -> R) -> R {
        f(&mut self.0.borrow_mut())
    }
}

impl Default for ObsHandle {
    fn default() -> Self {
        ObsHandle::new(Recorder::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut r = Recorder::with_capacity(64);
        for i in 0..10 {
            r.record(i, EventKind::ThreadSpawn { thread: i as u32 });
        }
        let ts: Vec<u64> = r.events().map(|e| e.t).collect();
        assert_eq!(ts, (0..10).collect::<Vec<_>>());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut r = Recorder::with_capacity(16);
        for i in 0..40u64 {
            r.record(i, EventKind::ThreadSpawn { thread: i as u32 });
        }
        assert_eq!(r.len(), 16);
        assert_eq!(r.dropped(), 24);
        let ts: Vec<u64> = r.events().map(|e| e.t).collect();
        assert_eq!(ts, (24..40).collect::<Vec<_>>());
    }

    #[test]
    fn level_filters_detail_events() {
        let mut r = Recorder::with_capacity(64);
        r.set_level(ObsLevel::Sync);
        r.record(
            1,
            EventKind::StealAttempt {
                thief: 0,
                victim: 1,
                success: true,
            },
        );
        r.record(2, EventKind::LockWait { lock: 0, thread: 1 });
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().t, 2);
        r.set_level(ObsLevel::Off);
        r.record(3, EventKind::LockWait { lock: 0, thread: 1 });
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn labels_intern_stably() {
        let mut r = Recorder::new();
        let a = r.intern("compute");
        let b = r.intern("reduce");
        let a2 = r.intern("compute");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(r.label(b), "reduce");
        assert_eq!(r.label(999), "?");
    }
}
