//! OpenMP 3.0 `task` execution: a fixed worker pool sharing one central
//! task queue.
//!
//! The paper names OpenMP 3.0 tasks (with TBB and Cilk Plus) as the
//! effective way to run recursive parallelism (§III). Unlike the
//! work-stealing Cilk runtime, the classic libgomp-style implementation
//! keeps a *central* queue protected by a lock: every push and pop takes
//! the queue lock, so fine-grained task storms serialise on the queue —
//! the characteristic scalability difference between the two paradigms
//! that the synthesizer can expose by simply re-running the same tree
//! under each runtime.

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use machsim::prog::{POp, ParSection, ParallelProgram, TaskBody};
use machsim::{
    Action, Env, Machine, MachineConfig, RunError, RunStats, SimLockId, ThreadBody, ThreadId,
    WorkPacket,
};

/// Overheads of the task runtime, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskOverheads {
    /// Creating + enqueuing one task (inside the queue lock).
    pub push: u64,
    /// Dequeuing one task (inside the queue lock).
    pub pop: u64,
    /// Resuming a continuation at a taskwait.
    pub sync: u64,
    /// Idle re-check period while the queue is empty.
    pub idle_backoff: u64,
}

impl TaskOverheads {
    /// All zero (exact-arithmetic tests); idle backoff stays minimal.
    pub fn zero() -> Self {
        TaskOverheads {
            push: 0,
            pop: 0,
            sync: 0,
            idle_backoff: 50,
        }
    }

    /// Calibrated defaults: central-queue operations are heavier than
    /// Cilk deque pushes (they take a shared lock).
    pub fn westmere_scaled() -> Self {
        TaskOverheads {
            push: 90,
            pop: 90,
            sync: 60,
            idle_backoff: 150,
        }
    }
}

impl Default for TaskOverheads {
    fn default() -> Self {
        Self::westmere_scaled()
    }
}

/// Join counter: the last finishing child resumes the suspended parent.
struct JoinCtl {
    pending: Cell<usize>,
    resume: RefCell<Option<ExecState>>,
}

enum TFrame {
    Seq {
        body: Rc<TaskBody>,
        idx: usize,
        lock_stage: Option<(u8, SimLockId, WorkPacket)>,
    },
}

/// A resumable task execution.
struct ExecState {
    frames: Vec<TFrame>,
    join: Option<Rc<JoinCtl>>,
}

/// Pool state: the central queue and its lock.
struct TaskPool {
    queue: RefCell<VecDeque<ExecState>>,
    queue_lock: Cell<Option<SimLockId>>,
    done: Cell<bool>,
    locks: RefCell<HashMap<u32, SimLockId>>,
    overheads: TaskOverheads,
    parked: RefCell<Vec<ThreadId>>,
}

impl TaskPool {
    fn lock_for(&self, env: &mut dyn Env, user_lock: u32) -> SimLockId {
        if let Some(&id) = self.locks.borrow().get(&user_lock) {
            return id;
        }
        let id = env.create_lock();
        self.locks.borrow_mut().insert(user_lock, id);
        id
    }

    fn queue_lock(&self, env: &mut dyn Env) -> SimLockId {
        match self.queue_lock.get() {
            Some(l) => l,
            None => {
                let l = env.create_lock();
                self.queue_lock.set(Some(l));
                l
            }
        }
    }

    fn wake_one(&self, env: &mut dyn Env) {
        if let Some(tid) = self.parked.borrow_mut().pop() {
            env.unpark(tid);
        }
    }

    fn wake_all(&self, env: &mut dyn Env) {
        for tid in self.parked.borrow_mut().drain(..) {
            env.unpark(tid);
        }
    }
}

/// Micro-state of a worker's transaction on the central queue. Every
/// transaction is `Acquire(queue lock) → Compute(cost) → mutate queue →
/// Release`, so concurrent workers genuinely serialise on the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueueOp {
    /// Not touching the queue.
    None,
    /// Lock acquired; pay the pop cost next.
    PopPay,
    /// Cost paid; pop and release.
    PopDo,
    /// Lock acquired; pay the push costs next.
    PushPay,
    /// Costs paid; enqueue all pending tasks, wake sleepers, release.
    PushDo,
}

/// A task-pool worker.
struct TaskWorker {
    pool: Rc<TaskPool>,
    current: Option<ExecState>,
    queue_op: QueueOp,
    /// Tasks awaiting enqueue while we take the queue lock.
    pending_push: Vec<ExecState>,
    idle_spins: u32,
}

impl ThreadBody for TaskWorker {
    fn step(&mut self, env: &mut dyn Env) -> Action {
        loop {
            // Advance an in-flight queue transaction.
            match self.queue_op {
                QueueOp::PopPay => {
                    self.queue_op = QueueOp::PopDo;
                    let cost = self.pool.overheads.pop;
                    if cost > 0 {
                        return Action::Compute(WorkPacket::cpu(cost));
                    }
                    continue;
                }
                QueueOp::PopDo => {
                    self.queue_op = QueueOp::None;
                    if let Some(task) = self.pool.queue.borrow_mut().pop_front() {
                        self.current = Some(task);
                    }
                    let lock = self.pool.queue_lock(env);
                    return Action::Release(lock);
                }
                QueueOp::PushPay => {
                    self.queue_op = QueueOp::PushDo;
                    let cost = self.pool.overheads.push * self.pending_push.len() as u64;
                    if cost > 0 {
                        return Action::Compute(WorkPacket::cpu(cost));
                    }
                    continue;
                }
                QueueOp::PushDo => {
                    self.queue_op = QueueOp::None;
                    let n = self.pending_push.len();
                    for t in self.pending_push.drain(..) {
                        obs_env!(env, TaskSpawn { worker: env.me().0 });
                        self.pool.queue.borrow_mut().push_back(t);
                    }
                    for _ in 0..n {
                        self.pool.wake_one(env);
                    }
                    let lock = self.pool.queue_lock(env);
                    return Action::Release(lock);
                }
                QueueOp::None => {}
            }

            let Some(exec) = self.current.as_mut() else {
                // Need work: take the queue lock and pop.
                if self.pool.done.get() {
                    return Action::Exit;
                }
                if self.pool.queue.borrow().is_empty() {
                    // Spin briefly, then park until a push wakes us.
                    if self.idle_spins < 3 {
                        self.idle_spins += 1;
                        return Action::Compute(WorkPacket::cpu(
                            self.pool.overheads.idle_backoff.max(1),
                        ));
                    }
                    self.idle_spins = 0;
                    let me = env.me();
                    self.pool.parked.borrow_mut().push(me);
                    if !self.pool.queue.borrow().is_empty() || self.pool.done.get() {
                        self.pool.parked.borrow_mut().retain(|&t| t != me);
                        continue;
                    }
                    return Action::Park;
                }
                self.idle_spins = 0;
                // Central-queue pop transaction.
                let lock = self.pool.queue_lock(env);
                self.queue_op = QueueOp::PopPay;
                return Action::Acquire(lock);
            };

            // Interpret the current task.
            let Some(TFrame::Seq {
                body,
                idx,
                lock_stage,
            }) = exec.frames.last_mut()
            else {
                // Task finished: notify the join.
                let state = self.current.take().expect("finishing without task");
                match state.join {
                    None => {
                        self.pool.done.set(true);
                        self.pool.wake_all(env);
                    }
                    Some(join) => {
                        let left = join.pending.get() - 1;
                        join.pending.set(left);
                        if left == 0 {
                            let resume = join
                                .resume
                                .borrow_mut()
                                .take()
                                .expect("taskwait resumed twice");
                            obs_env!(env, TaskSync { worker: env.me().0 });
                            self.current = Some(resume);
                            let sync = self.pool.overheads.sync;
                            if sync > 0 {
                                return Action::Compute(WorkPacket::cpu(sync));
                            }
                        }
                    }
                }
                continue;
            };

            if let Some((stage, lock, work)) = *lock_stage {
                match stage {
                    0 => {
                        *lock_stage = Some((1, lock, work));
                        return Action::Acquire(lock);
                    }
                    1 => {
                        *lock_stage = Some((2, lock, work));
                        return Action::Compute(work);
                    }
                    _ => {
                        *lock_stage = None;
                        *idx += 1;
                        return Action::Release(lock);
                    }
                }
            }
            let Some(op) = body.ops.get(*idx) else {
                exec.frames.pop();
                continue;
            };
            match op {
                POp::Work(p) => {
                    let p = *p;
                    *idx += 1;
                    return Action::Compute(p);
                }
                POp::Locked { lock, work } => {
                    let (lock, work) = (*lock, *work);
                    let sim = self.pool.lock_for(env, lock);
                    if let Some(TFrame::Seq { lock_stage, .. }) = exec.frames.last_mut() {
                        *lock_stage = Some((0, sim, work));
                    }
                    continue;
                }
                POp::Par(sec) => {
                    // `#pragma omp task` per child + taskwait: suspend the
                    // parent behind a join and enqueue every child task.
                    let sec: ParSection = sec.clone();
                    *idx += 1;
                    let join = Rc::new(JoinCtl {
                        pending: Cell::new(sec.tasks.len()),
                        resume: RefCell::new(None),
                    });
                    let n = sec.tasks.len();
                    if n == 0 {
                        continue;
                    }
                    let suspended = self.current.take().expect("suspending without task");
                    *join.resume.borrow_mut() = Some(suspended);
                    for task in sec.tasks {
                        self.pending_push.push(ExecState {
                            frames: vec![TFrame::Seq {
                                body: task,
                                idx: 0,
                                lock_stage: None,
                            }],
                            join: Some(join.clone()),
                        });
                    }
                    // Central-queue push transaction.
                    let lock = self.pool.queue_lock(env);
                    self.queue_op = QueueOp::PushPay;
                    return Action::Acquire(lock);
                }
                POp::Pipe(_) => {
                    unimplemented!("pipeline regions run under the OpenMP-like runtime")
                }
            }
        }
    }
}

/// Run `program` under the task runtime with `nworkers` pool threads.
pub fn run_program_tasks(
    cfg: MachineConfig,
    program: &ParallelProgram,
    overheads: TaskOverheads,
    nworkers: u32,
) -> Result<RunStats, RunError> {
    let mut machine = Machine::new(cfg);
    run_program_tasks_on(&mut machine, program, overheads, nworkers)
}

/// Run `program` under the task runtime on an existing (fresh) machine —
/// use this to configure the machine first, e.g. attach a `prophet-obs`
/// recorder.
pub fn run_program_tasks_on(
    machine: &mut Machine,
    program: &ParallelProgram,
    overheads: TaskOverheads,
    nworkers: u32,
) -> Result<RunStats, RunError> {
    let nworkers = nworkers.max(1);
    let pool = Rc::new(TaskPool {
        queue: RefCell::new(VecDeque::new()),
        queue_lock: Cell::new(None),
        done: Cell::new(false),
        locks: RefCell::new(HashMap::new()),
        overheads,
        parked: RefCell::new(Vec::new()),
    });
    let main = ExecState {
        frames: vec![TFrame::Seq {
            body: Rc::new(TaskBody {
                ops: program.ops.clone(),
            }),
            idx: 0,
            lock_stage: None,
        }],
        join: None,
    };
    machine.spawn(TaskWorker {
        pool: pool.clone(),
        current: Some(main),
        queue_op: QueueOp::None,
        pending_push: Vec::new(),
        idle_spins: 0,
    });
    for _ in 1..nworkers {
        machine.spawn(TaskWorker {
            pool: pool.clone(),
            current: None,
            queue_op: QueueOp::None,
            pending_push: Vec::new(),
            idle_spins: 0,
        });
    }
    machine.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loop_prog(lens: &[u64]) -> ParallelProgram {
        let tasks = lens
            .iter()
            .map(|&l| {
                Rc::new(TaskBody {
                    ops: vec![POp::Work(WorkPacket::cpu(l))],
                })
            })
            .collect();
        ParallelProgram {
            ops: vec![POp::Par(ParSection::new(tasks))],
        }
    }

    #[test]
    fn balanced_loop_scales() {
        let prog = loop_prog(&[20_000; 32]);
        let t1 = run_program_tasks(MachineConfig::small(1), &prog, TaskOverheads::zero(), 1)
            .unwrap()
            .elapsed_cycles;
        let t4 = run_program_tasks(MachineConfig::small(4), &prog, TaskOverheads::zero(), 4)
            .unwrap()
            .elapsed_cycles;
        let speedup = t1 as f64 / t4 as f64;
        assert!(speedup > 3.5, "speedup {speedup}");
    }

    #[test]
    fn recursive_tasks_complete_without_thread_explosion() {
        fn rec(depth: u32) -> Rc<TaskBody> {
            if depth == 0 {
                return Rc::new(TaskBody {
                    ops: vec![POp::Work(WorkPacket::cpu(5_000))],
                });
            }
            Rc::new(TaskBody {
                ops: vec![POp::Par(ParSection::new(vec![
                    rec(depth - 1),
                    rec(depth - 1),
                ]))],
            })
        }
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection::new(vec![rec(5)]))],
        };
        let s =
            run_program_tasks(MachineConfig::small(4), &prog, TaskOverheads::zero(), 4).unwrap();
        assert_eq!(s.threads_spawned, 4);
        assert!(s.busy_cycles >= 32 * 5_000);
    }

    #[test]
    fn central_queue_contention_hurts_fine_grain() {
        // 4096 tiny tasks: the central queue (locked push/pop) caps the
        // task throughput; Cilk's distributed deques do much better.
        let prog = loop_prog(&[300; 4096]);
        let tasks = run_program_tasks(
            MachineConfig::small(8),
            &prog,
            TaskOverheads::westmere_scaled(),
            8,
        )
        .unwrap()
        .elapsed_cycles;
        let cilk = cilk_rt::run_program_cilk(
            MachineConfig::small(8),
            &prog,
            cilk_rt::CilkOverheads::westmere_scaled(),
            8,
        )
        .unwrap()
        .elapsed_cycles;
        assert!(
            tasks as f64 > 1.5 * cilk as f64,
            "central queue ({tasks}) should lose to work stealing ({cilk}) on fine grain"
        );
    }

    #[test]
    fn coarse_grain_parity_with_cilk() {
        let prog = loop_prog(&[500_000; 32]);
        let tasks = run_program_tasks(
            MachineConfig::small(8),
            &prog,
            TaskOverheads::westmere_scaled(),
            8,
        )
        .unwrap()
        .elapsed_cycles;
        let cilk = cilk_rt::run_program_cilk(
            MachineConfig::small(8),
            &prog,
            cilk_rt::CilkOverheads::westmere_scaled(),
            8,
        )
        .unwrap()
        .elapsed_cycles;
        let ratio = tasks as f64 / cilk as f64;
        assert!(
            (0.9..1.15).contains(&ratio),
            "coarse grain parity broke: {ratio}"
        );
    }

    #[test]
    fn locks_respected() {
        let task = Rc::new(TaskBody {
            ops: vec![POp::Locked {
                lock: 3,
                work: WorkPacket::cpu(10_000),
            }],
        });
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection::new(vec![
                task.clone(),
                task.clone(),
                task,
            ]))],
        };
        let s =
            run_program_tasks(MachineConfig::small(4), &prog, TaskOverheads::zero(), 4).unwrap();
        assert!(s.elapsed_cycles >= 30_000);
        // Machine-wide lock stats also count the central queue lock.
        assert!(s.lock_acquisitions >= 3);
    }

    #[test]
    fn deterministic() {
        let lens: Vec<u64> = (1..=30).map(|i| (i * 531) % 7_000 + 500).collect();
        let prog = loop_prog(&lens);
        let run = || {
            run_program_tasks(
                MachineConfig::small(3),
                &prog,
                TaskOverheads::westmere_scaled(),
                3,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }
}
