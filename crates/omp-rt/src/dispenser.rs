//! Iteration-space dispensers implementing the OpenMP loop schedules.
//!
//! A dispenser hands out `[start, end)` chunks of the task index space.
//! Static schedules precompute each rank's chunks (no shared state);
//! dynamic and guided schedules share a cursor, and the *order in which
//! workers ask* — which the simulation makes deterministic — decides the
//! assignment, exactly as on a real machine.

use machsim::Schedule;

/// Chunk dispenser for one parallel region.
#[derive(Debug)]
pub enum Dispenser {
    /// `schedule(static)`: one contiguous block per rank.
    StaticBlock {
        /// Iteration count.
        n: usize,
        /// Team size.
        team: u32,
        /// Whether each rank has taken its block yet.
        taken: Vec<bool>,
    },
    /// `schedule(static,c)`: round-robin chunks of `c`.
    StaticChunk {
        /// Iteration count.
        n: usize,
        /// Chunk size.
        chunk: usize,
        /// Team size.
        team: u32,
        /// Next chunk start per rank.
        next: Vec<usize>,
    },
    /// `schedule(dynamic,c)`: shared cursor.
    Dynamic {
        /// Iteration count.
        n: usize,
        /// Chunk size.
        chunk: usize,
        /// Next unclaimed iteration.
        cursor: usize,
    },
    /// `schedule(guided,min)`: exponentially shrinking chunks.
    Guided {
        /// Iteration count.
        n: usize,
        /// Minimum chunk size.
        min_chunk: usize,
        /// Team size.
        team: u32,
        /// Next unclaimed iteration.
        cursor: usize,
    },
}

impl Dispenser {
    /// Build a dispenser for `n` tasks under `schedule` with `team`
    /// threads.
    pub fn new(schedule: Schedule, n: usize, team: u32) -> Self {
        let team = team.max(1);
        match schedule {
            Schedule::Static { chunk: None } => Dispenser::StaticBlock {
                n,
                team,
                taken: vec![false; team as usize],
            },
            Schedule::Static { chunk: Some(c) } => Dispenser::StaticChunk {
                n,
                chunk: (c as usize).max(1),
                team,
                next: (0..team as usize)
                    .map(|r| r * (c as usize).max(1))
                    .collect(),
            },
            Schedule::Dynamic { chunk } => Dispenser::Dynamic {
                n,
                chunk: (chunk as usize).max(1),
                cursor: 0,
            },
            Schedule::Guided { min_chunk } => Dispenser::Guided {
                n,
                min_chunk: (min_chunk as usize).max(1),
                team,
                cursor: 0,
            },
        }
    }

    /// Next chunk for `rank`, or `None` when the rank's share (static) or
    /// the whole space (dynamic/guided) is exhausted.
    pub fn next_chunk(&mut self, rank: u32) -> Option<(usize, usize)> {
        match self {
            Dispenser::StaticBlock { n, team, taken } => {
                let r = rank as usize;
                if taken[r] {
                    return None;
                }
                taken[r] = true;
                // OpenMP block partition: first n%team ranks get one extra.
                let n_ = *n;
                let t = *team as usize;
                let base = n_ / t;
                let rem = n_ % t;
                let start = r * base + r.min(rem);
                let size = base + usize::from(r < rem);
                if size == 0 {
                    None
                } else {
                    Some((start, start + size))
                }
            }
            Dispenser::StaticChunk {
                n,
                chunk,
                team,
                next,
            } => {
                let r = rank as usize;
                let start = next[r];
                if start >= *n {
                    return None;
                }
                next[r] = start + *chunk * *team as usize;
                Some((start, (start + *chunk).min(*n)))
            }
            Dispenser::Dynamic { n, chunk, cursor } => {
                if *cursor >= *n {
                    return None;
                }
                let start = *cursor;
                *cursor = (*cursor + *chunk).min(*n);
                Some((start, *cursor))
            }
            Dispenser::Guided {
                n,
                min_chunk,
                team,
                cursor,
            } => {
                if *cursor >= *n {
                    return None;
                }
                let remaining = *n - *cursor;
                let size = (remaining / (*team as usize))
                    .max(*min_chunk)
                    .min(remaining)
                    .max(1);
                let start = *cursor;
                *cursor += size;
                Some((start, start + size))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collect every chunk each rank would receive (round-robin polling,
    /// which matches how equal-speed workers interleave).
    fn drain(mut d: Dispenser, team: u32) -> Vec<Vec<(usize, usize)>> {
        let mut out = vec![Vec::new(); team as usize];
        let mut done = vec![false; team as usize];
        while done.iter().any(|&d| !d) {
            for r in 0..team {
                if done[r as usize] {
                    continue;
                }
                match d.next_chunk(r) {
                    Some(c) => out[r as usize].push(c),
                    None => done[r as usize] = true,
                }
            }
        }
        out
    }

    fn covers_exactly(chunks: &[Vec<(usize, usize)>], n: usize) {
        let mut hit = vec![0u32; n];
        for per_rank in chunks {
            for &(s, e) in per_rank {
                assert!(s < e && e <= n, "bad chunk ({s},{e}) of {n}");
                for h in &mut hit[s..e] {
                    *h += 1;
                }
            }
        }
        assert!(
            hit.iter().all(|&h| h == 1),
            "iterations not covered exactly once: {hit:?}"
        );
    }

    #[test]
    fn static_block_partition_matches_openmp() {
        let chunks = drain(Dispenser::new(Schedule::static_block(), 10, 3), 3);
        assert_eq!(chunks[0], vec![(0, 4)]);
        assert_eq!(chunks[1], vec![(4, 7)]);
        assert_eq!(chunks[2], vec![(7, 10)]);
    }

    #[test]
    fn static_block_more_threads_than_work() {
        let chunks = drain(Dispenser::new(Schedule::static_block(), 2, 4), 4);
        covers_exactly(&chunks, 2);
        assert!(chunks[2].is_empty() && chunks[3].is_empty());
    }

    #[test]
    fn static_chunk_round_robins() {
        let chunks = drain(Dispenser::new(Schedule::static1(), 7, 2), 2);
        assert_eq!(chunks[0], vec![(0, 1), (2, 3), (4, 5), (6, 7)]);
        assert_eq!(chunks[1], vec![(1, 2), (3, 4), (5, 6)]);
    }

    #[test]
    fn static_chunk_larger_chunks() {
        let chunks = drain(
            Dispenser::new(Schedule::Static { chunk: Some(3) }, 10, 2),
            2,
        );
        covers_exactly(&chunks, 10);
        assert_eq!(chunks[0][0], (0, 3));
        assert_eq!(chunks[1][0], (3, 6));
    }

    #[test]
    fn dynamic_covers_everything_in_cursor_order() {
        let chunks = drain(Dispenser::new(Schedule::Dynamic { chunk: 2 }, 9, 3), 3);
        covers_exactly(&chunks, 9);
    }

    #[test]
    fn guided_chunks_shrink_and_cover() {
        let chunks = drain(Dispenser::new(Schedule::Guided { min_chunk: 1 }, 100, 4), 4);
        covers_exactly(&chunks, 100);
        // First grab is remaining/team = 25; sizes shrink thereafter.
        let flat: Vec<(usize, usize)> = {
            let mut all: Vec<_> = chunks.iter().flatten().copied().collect();
            all.sort();
            all
        };
        assert_eq!(flat[0], (0, 25));
        let sizes: Vec<usize> = flat.iter().map(|&(s, e)| e - s).collect();
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "sizes not shrinking: {sizes:?}"
        );
    }

    #[test]
    fn empty_space_yields_nothing() {
        for sched in [
            Schedule::static_block(),
            Schedule::static1(),
            Schedule::dynamic1(),
            Schedule::Guided { min_chunk: 2 },
        ] {
            let mut d = Dispenser::new(sched, 0, 4);
            for r in 0..4 {
                assert_eq!(d.next_chunk(r), None);
            }
        }
    }
}
