//! Per-construct runtime overheads.
//!
//! The paper measures OpenMP construct overheads with the EPCC-style
//! microbenchmarks of Bull/O'Neill and Dimakopoulos et al. ([6, 8]) and
//! adds them to its emulators "when (1) a parallel loop is started and
//! terminated, (2) an iteration is started, and (3) a critical section is
//! acquired and released" (§IV-C). These are those knobs, in cycles.

use serde::{Deserialize, Serialize};

/// Overhead cycles charged by the OpenMP-like runtime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OmpOverheads {
    /// Fork: entering a parallel region (team creation), charged to the
    /// master before workers start.
    pub parallel_start: u64,
    /// Join: leaving a parallel region after the end barrier (master).
    pub parallel_end: u64,
    /// Per-worker startup cost (thread wake/creation), charged to each
    /// non-master team member before its first chunk.
    pub worker_start: u64,
    /// Per-chunk cost of a static schedule dispatch.
    pub static_dispatch: u64,
    /// Per-chunk cost of a dynamic/guided grab (shared-counter access).
    pub dynamic_dispatch: u64,
    /// Per-iteration start cost.
    pub iter_start: u64,
    /// Entering a critical section (uncontended cost; contention itself is
    /// simulated by the machine's mutex).
    pub lock_acquire: u64,
    /// Leaving a critical section.
    pub lock_release: u64,
}

impl OmpOverheads {
    /// All overheads zero — for tests that need exact arithmetic.
    pub fn zero() -> Self {
        OmpOverheads {
            parallel_start: 0,
            parallel_end: 0,
            worker_start: 0,
            static_dispatch: 0,
            dynamic_dispatch: 0,
            iter_start: 0,
            lock_acquire: 0,
            lock_release: 0,
        }
    }

    /// Calibrated defaults for the scaled Westmere machine, in the ranges
    /// the EPCC microbenchmarks report for ICC's OpenMP (fork/join a few
    /// microseconds, dispatch tens of cycles).
    pub fn westmere_scaled() -> Self {
        OmpOverheads {
            parallel_start: 8_000,
            parallel_end: 4_000,
            worker_start: 2_000,
            static_dispatch: 40,
            dynamic_dispatch: 120,
            iter_start: 15,
            lock_acquire: 60,
            lock_release: 40,
        }
    }

    /// Dispatch overhead for a schedule kind.
    pub fn dispatch_for(&self, schedule: &machsim::Schedule) -> u64 {
        match schedule {
            machsim::Schedule::Static { .. } => self.static_dispatch,
            machsim::Schedule::Dynamic { .. } | machsim::Schedule::Guided { .. } => {
                self.dynamic_dispatch
            }
        }
    }
}

impl Default for OmpOverheads {
    fn default() -> Self {
        Self::westmere_scaled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_selector() {
        let o = OmpOverheads::westmere_scaled();
        assert_eq!(
            o.dispatch_for(&machsim::Schedule::static1()),
            o.static_dispatch
        );
        assert_eq!(
            o.dispatch_for(&machsim::Schedule::dynamic1()),
            o.dynamic_dispatch
        );
        assert_eq!(
            o.dispatch_for(&machsim::Schedule::Guided { min_chunk: 1 }),
            o.dynamic_dispatch
        );
    }
}
