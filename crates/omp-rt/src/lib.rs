#![warn(missing_docs)]

//! An OpenMP-like runtime executing [`machsim::ParallelProgram`]s on the
//! simulated machine.
//!
//! This plays the role of the Intel OpenMP runtime in the paper's testbed:
//! it provides loop worksharing under `static` / `static,c` / `dynamic,c` /
//! `guided` schedules, critical sections, implicit end-of-region barriers
//! (suppressible via `nowait`), and *nested parallel regions that spawn
//! fresh teams of simulated threads*. That last property reproduces the
//! oversubscription behaviour the paper discusses: a naive nested OpenMP
//! program creates `t × t` logical threads which the machine's preemptive
//! OS scheduler time-slices across its cores (Fig. 7).
//!
//! Per-construct overheads are modelled explicitly (fork, join, per-chunk
//! dispatch, per-iteration start, lock acquire/release) following the
//! EPCC-style microbenchmark methodology the paper cites ([6, 8]); see
//! [`OmpOverheads`].

/// Record an event on the machine's recorder via the worker's [`Env`],
/// timestamped with virtual time. Expands to nothing without the `obs`
/// feature.
#[cfg(feature = "obs")]
macro_rules! obs_env {
    ($env:expr, $($kind:tt)+) => {
        if let Some(h) = $env.obs() {
            let t = $env.now();
            h.record(t, prophet_obs::EventKind::$($kind)+);
        }
    };
}

#[cfg(not(feature = "obs"))]
macro_rules! obs_env {
    ($env:expr, $($kind:tt)+) => {};
}

/// Record the begin or end of a labelled region span for the calling
/// thread on the machine's recorder.
#[cfg(feature = "obs")]
pub(crate) fn obs_span(env: &mut dyn machsim::Env, begin: bool, label: &str) {
    if let Some(h) = env.obs() {
        let label = h.intern(label);
        let thread = env.me().0;
        let kind = if begin {
            prophet_obs::EventKind::SpanBegin {
                kind: prophet_obs::SpanKind::Region,
                label,
                thread,
            }
        } else {
            prophet_obs::EventKind::SpanEnd {
                kind: prophet_obs::SpanKind::Region,
                label,
                thread,
            }
        };
        h.record(env.now(), kind);
    }
}

pub mod dispenser;
pub mod overhead;
pub mod pipeline;
pub mod tasks;
pub mod worker;

pub use dispenser::Dispenser;
pub use overhead::OmpOverheads;
pub use pipeline::PipeCtl;
pub use tasks::{run_program_tasks, run_program_tasks_on, TaskOverheads};
pub use worker::{run_program, run_program_on, OmpRuntime, Worker};

#[cfg(test)]
mod tests {
    use std::rc::Rc;

    use machsim::prog::{POp, ParSection, ParallelProgram, Schedule, TaskBody};
    use machsim::{MachineConfig, WorkPacket};

    use crate::overhead::OmpOverheads;
    use crate::worker::run_program;

    fn loop_prog(lens: &[u64], schedule: Schedule) -> ParallelProgram {
        let tasks = lens
            .iter()
            .map(|&l| {
                Rc::new(TaskBody {
                    ops: vec![POp::Work(WorkPacket::cpu(l))],
                })
            })
            .collect();
        ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks,
                schedule,
                nowait: false,
                team: None,
            })],
        }
    }

    #[test]
    fn balanced_loop_perfect_speedup_no_overhead() {
        let cfg = MachineConfig::small(4);
        let prog = loop_prog(&[1000; 8], Schedule::static1());
        let s = run_program(cfg, &prog, OmpOverheads::zero(), 4).unwrap();
        assert_eq!(s.elapsed_cycles, 2000);
    }

    #[test]
    fn fig5_case1_static1() {
        // Paper Fig. 5: iterations of 650/600/250 cycles (with an embedded
        // lock), dual core. We reproduce the scheduling outcomes with the
        // lock segments: I0 = 150+(L)450+50, I1 = 100+(L)300+200,
        // I2 = 150+(L)50+50.
        let mk = |a: u64, l: u64, b: u64| {
            Rc::new(TaskBody {
                ops: vec![
                    POp::Work(WorkPacket::cpu(a)),
                    POp::Locked {
                        lock: 1,
                        work: WorkPacket::cpu(l),
                    },
                    POp::Work(WorkPacket::cpu(b)),
                ],
            })
        };
        let tasks = vec![mk(150, 450, 50), mk(100, 300, 200), mk(150, 50, 50)];
        let total: u64 = 1500;

        // (static,1): T0 gets I0,I2; T1 gets I1 → paper: 1150 + ε.
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: tasks.clone().into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: None,
            })],
        };
        let s = run_program(MachineConfig::small(2), &prog, OmpOverheads::zero(), 2).unwrap();
        let speedup = total as f64 / s.elapsed_cycles as f64;
        assert!(
            (speedup - 1.30).abs() < 0.06,
            "static-1 speedup {speedup} (elapsed {})",
            s.elapsed_cycles
        );

        // (static): T0 gets I0,I1; T1 gets I2 → paper: 1250 + ε.
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: tasks.clone().into(),
                schedule: Schedule::static_block(),
                nowait: false,
                team: None,
            })],
        };
        let s = run_program(MachineConfig::small(2), &prog, OmpOverheads::zero(), 2).unwrap();
        let speedup = total as f64 / s.elapsed_cycles as f64;
        assert!(
            (speedup - 1.20).abs() < 0.06,
            "static speedup {speedup} (elapsed {})",
            s.elapsed_cycles
        );

        // (dynamic,1): T0 gets I0; T1 gets I1 then I2 → paper: 950 + ε.
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: tasks.into(),
                schedule: Schedule::dynamic1(),
                nowait: false,
                team: None,
            })],
        };
        let s = run_program(MachineConfig::small(2), &prog, OmpOverheads::zero(), 2).unwrap();
        let speedup = total as f64 / s.elapsed_cycles as f64;
        assert!(
            (speedup - 1.58).abs() < 0.08,
            "dynamic-1 speedup {speedup} (elapsed {})",
            s.elapsed_cycles
        );
    }

    #[test]
    fn imbalanced_loop_dynamic_beats_static_block() {
        // Triangular workload (like LU): dynamic-1 balances better than a
        // block partition.
        let lens: Vec<u64> = (1..=32).map(|i| i * 100).collect();
        let cfg = MachineConfig::small(4);
        let st = run_program(
            cfg,
            &loop_prog(&lens, Schedule::static_block()),
            OmpOverheads::zero(),
            4,
        )
        .unwrap();
        let dy = run_program(
            cfg,
            &loop_prog(&lens, Schedule::dynamic1()),
            OmpOverheads::zero(),
            4,
        )
        .unwrap();
        assert!(
            dy.elapsed_cycles < st.elapsed_cycles,
            "dynamic {} !< static {}",
            dy.elapsed_cycles,
            st.elapsed_cycles
        );
    }

    #[test]
    fn guided_schedule_completes_all_work() {
        let lens: Vec<u64> = (1..=50).map(|i| (i % 7 + 1) * 50).collect();
        let total: u64 = lens.iter().sum();
        let cfg = MachineConfig::small(4);
        let s = run_program(
            cfg,
            &loop_prog(&lens, Schedule::Guided { min_chunk: 2 }),
            OmpOverheads::zero(),
            4,
        )
        .unwrap();
        assert!(s.elapsed_cycles >= total / 4);
        assert!(s.busy_cycles >= total, "all work executed");
    }

    #[test]
    fn fork_join_overhead_charged() {
        let cfg = MachineConfig::small(4);
        let prog = loop_prog(&[100; 4], Schedule::static1());
        let zero = run_program(cfg, &prog, OmpOverheads::zero(), 4).unwrap();
        let mut ovh = OmpOverheads::zero();
        ovh.parallel_start = 500;
        ovh.parallel_end = 300;
        let with = run_program(cfg, &prog, ovh, 4).unwrap();
        assert_eq!(with.elapsed_cycles, zero.elapsed_cycles + 800);
    }

    #[test]
    fn per_iteration_and_dispatch_overheads_scale_with_trip_count() {
        let cfg = MachineConfig::small(1);
        let mut ovh = OmpOverheads::zero();
        ovh.iter_start = 10;
        ovh.dynamic_dispatch = 25;
        let prog = loop_prog(&[100; 10], Schedule::dynamic1());
        let s = run_program(cfg, &prog, ovh, 1).unwrap();
        // 10 iters ×(100 work + 10 iter + 25 dispatch) + one empty grab (25).
        assert_eq!(s.elapsed_cycles, 10 * 135 + 25);
    }

    #[test]
    fn nested_region_spawns_fresh_team() {
        // Outer loop of 2 tasks, each containing an inner loop of 2 tasks:
        // with team=2 on a 4-core machine, 2 outer threads + 2×2 inner
        // threads were spawned over the run.
        let inner = ParSection {
            tasks: (0..2)
                .map(|_| {
                    Rc::new(TaskBody {
                        ops: vec![POp::Work(WorkPacket::cpu(500))],
                    })
                })
                .collect(),
            schedule: Schedule::static1(),
            nowait: false,
            team: Some(2),
        };
        let outer_task = Rc::new(TaskBody {
            ops: vec![POp::Par(inner)],
        });
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: vec![outer_task.clone(), outer_task].into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: Some(2),
            })],
        };
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 2).unwrap();
        // 4 inner tasks of 500 on 4 cores → 500 cycles.
        assert_eq!(s.elapsed_cycles, 500);
        // master + 1 outer + 2×1 inner workers = 4 spawned threads.
        assert_eq!(s.threads_spawned, 4);
    }

    #[test]
    fn fig7_nested_oversubscription_reaches_full_speedup() {
        // The paper's Fig. 7: two nested loops, each with tasks (10,5) and
        // (5,10) units, on 2 cores. Preemptive OS scheduling interleaves
        // the four inner threads, achieving ~2× while a non-preemptive
        // round-robin emulation predicts 1.5×. Scale units by 1000 cycles
        // and use a small quantum so slicing is effective.
        let unit = 10_000u64;
        let mk_inner = |a: u64, b: u64| {
            POp::Par(ParSection {
                tasks: vec![
                    Rc::new(TaskBody {
                        ops: vec![POp::Work(WorkPacket::cpu(a * unit))],
                    }),
                    Rc::new(TaskBody {
                        ops: vec![POp::Work(WorkPacket::cpu(b * unit))],
                    }),
                ]
                .into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: Some(2),
            })
        };
        let t_a = Rc::new(TaskBody {
            ops: vec![mk_inner(10, 5)],
        });
        let t_b = Rc::new(TaskBody {
            ops: vec![mk_inner(5, 10)],
        });
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: vec![t_a, t_b].into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: Some(2),
            })],
        };
        let mut cfg = MachineConfig::small(2);
        cfg.quantum_cycles = 5_000;
        let s = run_program(cfg, &prog, OmpOverheads::zero(), 2).unwrap();
        let total_work = 30 * unit;
        let speedup = total_work as f64 / s.elapsed_cycles as f64;
        assert!(
            speedup > 1.85,
            "preemptive scheduling should reach ~2x, got {speedup} ({})",
            s.elapsed_cycles
        );
    }

    #[test]
    fn critical_sections_respect_user_lock_identity() {
        // Two different locks don't serialise against each other.
        let t1 = Rc::new(TaskBody {
            ops: vec![POp::Locked {
                lock: 1,
                work: WorkPacket::cpu(1000),
            }],
        });
        let t2 = Rc::new(TaskBody {
            ops: vec![POp::Locked {
                lock: 2,
                work: WorkPacket::cpu(1000),
            }],
        });
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: vec![t1, t2].into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: None,
            })],
        };
        let s = run_program(MachineConfig::small(2), &prog, OmpOverheads::zero(), 2).unwrap();
        assert_eq!(s.elapsed_cycles, 1000);

        // The same lock does serialise.
        let t3 = Rc::new(TaskBody {
            ops: vec![POp::Locked {
                lock: 1,
                work: WorkPacket::cpu(1000),
            }],
        });
        let prog2 = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: vec![t3.clone(), t3].into(),
                schedule: Schedule::static1(),
                nowait: false,
                team: None,
            })],
        };
        let s2 = run_program(MachineConfig::small(2), &prog2, OmpOverheads::zero(), 2).unwrap();
        assert_eq!(s2.elapsed_cycles, 2000);
    }

    #[test]
    fn serial_prologue_and_epilogue_execute_on_master() {
        let prog = ParallelProgram {
            ops: vec![
                POp::Work(WorkPacket::cpu(500)),
                POp::Par(ParSection {
                    tasks: (0..4)
                        .map(|_| {
                            Rc::new(TaskBody {
                                ops: vec![POp::Work(WorkPacket::cpu(1000))],
                            })
                        })
                        .collect(),
                    schedule: Schedule::static1(),
                    nowait: false,
                    team: None,
                }),
                POp::Work(WorkPacket::cpu(300)),
            ],
        };
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 4).unwrap();
        assert_eq!(s.elapsed_cycles, 500 + 1000 + 300);
    }

    #[test]
    fn team_of_one_runs_serially_without_spawning() {
        let prog = loop_prog(&[100; 5], Schedule::static1());
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 1).unwrap();
        assert_eq!(s.elapsed_cycles, 500);
        assert_eq!(s.threads_spawned, 1);
    }

    #[test]
    fn more_threads_than_cores_still_completes() {
        let prog = loop_prog(&[1000; 16], Schedule::dynamic1());
        let mut cfg = MachineConfig::small(2);
        cfg.quantum_cycles = 500;
        let s = run_program(cfg, &prog, OmpOverheads::zero(), 8).unwrap();
        assert_eq!(s.busy_cycles, 16_000);
        assert_eq!(s.elapsed_cycles, 8_000);
    }
}
