//! The OpenMP-like worker: a resumable interpreter over the program IR.
//!
//! Each simulated thread runs a [`Worker`] body holding a stack of frames:
//! `Seq` frames execute an operation sequence (the main program or a task
//! body), `Region` frames drive participation in one parallel region
//! (chunk dispatch, per-iteration overhead, end barrier). Encountering a
//! nested `POp::Par` pushes a new region and spawns a fresh team — nested
//! parallelism therefore oversubscribes the machine exactly like a naive
//! nested OpenMP program.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use machsim::prog::{POp, ParSection, ParallelProgram, TaskBody, TaskList};
use machsim::{
    Action, BarrierId, Env, Machine, MachineConfig, RunError, RunStats, SimLockId, ThreadBody,
    WorkPacket,
};

use crate::dispenser::Dispenser;
use crate::overhead::OmpOverheads;

/// Shared, runtime-global state: overheads, the default team size, and the
/// user-lock registry (annotation lock ids → machine mutexes).
pub struct OmpRuntime {
    /// Construct overheads in cycles.
    pub overheads: OmpOverheads,
    /// Team size for sections that don't override it.
    pub default_team: u32,
    locks: RefCell<HashMap<u32, SimLockId>>,
}

impl OmpRuntime {
    /// New runtime state.
    pub fn new(overheads: OmpOverheads, default_team: u32) -> Rc<Self> {
        Rc::new(OmpRuntime {
            overheads,
            default_team: default_team.max(1),
            locks: RefCell::new(HashMap::new()),
        })
    }

    pub(crate) fn lock_for(&self, env: &mut dyn Env, user_lock: u32) -> SimLockId {
        if let Some(&id) = self.locks.borrow().get(&user_lock) {
            return id;
        }
        let id = env.create_lock();
        self.locks.borrow_mut().insert(user_lock, id);
        id
    }
}

/// Control block of one parallel-region *instance*.
struct RegionCtl {
    tasks: TaskList,
    dispenser: RefCell<Dispenser>,
    /// End barrier; `None` when the section is `nowait`.
    barrier: Option<BarrierId>,
    /// Dispatch overhead per chunk grab for this region's schedule.
    dispatch_ovh: u64,
}

/// Stage of a `Locked` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LockStage {
    AcquireOvh,
    Acquire,
    Body,
    Release,
    ReleaseOvh,
}

/// A frame executing an op sequence.
struct SeqFrame {
    body: Rc<TaskBody>,
    idx: usize,
    /// In-progress `Locked` op stage.
    lock_stage: Option<(LockStage, SimLockId, WorkPacket)>,
}

impl SeqFrame {
    fn new(body: Rc<TaskBody>) -> Self {
        SeqFrame {
            body,
            idx: 0,
            lock_stage: None,
        }
    }
}

/// Phase of a region frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RPhase {
    /// Charge the worker-start overhead (non-master first entry).
    StartOvh,
    /// Charge the dispatch overhead, then grab.
    PayDispatch,
    /// Ask the dispenser for a chunk.
    Grab,
    /// Charge per-iteration overhead, then push the task.
    IterOvh,
    /// Push the next task of the current chunk.
    PushTask,
    /// Arrive at the end barrier.
    EndBarrier,
    /// After the barrier: master pays join overhead and pops; workers exit.
    Epilogue,
}

/// A frame driving participation in one region.
struct RegionFrame {
    ctl: Rc<RegionCtl>,
    rank: u32,
    is_master: bool,
    chunk: Option<(usize, usize)>,
    pos: usize,
    phase: RPhase,
}

enum Frame {
    Seq(SeqFrame),
    Region(RegionFrame),
    /// Master waiting for a pipeline region to drain.
    PipeWait(Rc<crate::pipeline::PipeCtl>),
}

/// The interpreter thread body.
pub struct Worker {
    rt: Rc<OmpRuntime>,
    stack: Vec<Frame>,
}

impl Worker {
    /// Master worker executing the whole program.
    pub fn master(rt: Rc<OmpRuntime>, program: &ParallelProgram) -> Self {
        let body = Rc::new(TaskBody {
            ops: program.ops.clone(),
        });
        Worker {
            rt,
            stack: vec![Frame::Seq(SeqFrame::new(body))],
        }
    }

    fn team_member(rt: Rc<OmpRuntime>, ctl: Rc<RegionCtl>, rank: u32) -> Self {
        Worker {
            rt,
            stack: vec![Frame::Region(RegionFrame {
                ctl,
                rank,
                is_master: false,
                chunk: None,
                pos: 0,
                phase: RPhase::StartOvh,
            })],
        }
    }

    /// Enter a parallel section: build the region control block, spawn the
    /// team, and return the master's region frame.
    fn enter_region(&self, env: &mut dyn Env, sec: &ParSection) -> RegionFrame {
        let team = sec.team.unwrap_or(self.rt.default_team).max(1);
        let barrier = if sec.nowait {
            None
        } else {
            Some(env.create_barrier(team))
        };
        let ctl = Rc::new(RegionCtl {
            tasks: sec.tasks.clone(),
            dispenser: RefCell::new(Dispenser::new(sec.schedule, sec.tasks.len(), team)),
            barrier,
            dispatch_ovh: self.rt.overheads.dispatch_for(&sec.schedule),
        });
        for rank in 1..team {
            env.spawn(Box::new(Worker::team_member(
                self.rt.clone(),
                ctl.clone(),
                rank,
            )));
        }
        RegionFrame {
            ctl,
            rank: 0,
            is_master: true,
            chunk: None,
            pos: 0,
            phase: RPhase::PayDispatch,
        }
    }
}

impl ThreadBody for Worker {
    fn step(&mut self, env: &mut dyn Env) -> Action {
        loop {
            // Split off the region-entry case to satisfy the borrow
            // checker: popping/pushing frames needs &mut self.stack.
            let Some(top) = self.stack.last_mut() else {
                return Action::Exit;
            };
            match top {
                Frame::Seq(f) => {
                    // Mid-`Locked` stage machine.
                    if let Some((stage, lock, work)) = f.lock_stage {
                        match stage {
                            LockStage::AcquireOvh => {
                                f.lock_stage = Some((LockStage::Acquire, lock, work));
                                return Action::Compute(WorkPacket::cpu(
                                    self.rt.overheads.lock_acquire,
                                ));
                            }
                            LockStage::Acquire => {
                                f.lock_stage = Some((LockStage::Body, lock, work));
                                return Action::Acquire(lock);
                            }
                            LockStage::Body => {
                                f.lock_stage = Some((LockStage::Release, lock, work));
                                return Action::Compute(work);
                            }
                            LockStage::Release => {
                                f.lock_stage = Some((LockStage::ReleaseOvh, lock, work));
                                return Action::Release(lock);
                            }
                            LockStage::ReleaseOvh => {
                                f.lock_stage = None;
                                f.idx += 1;
                                return Action::Compute(WorkPacket::cpu(
                                    self.rt.overheads.lock_release,
                                ));
                            }
                        }
                    }
                    let Some(op) = f.body.ops.get(f.idx) else {
                        self.stack.pop();
                        continue;
                    };
                    match op {
                        POp::Work(p) => {
                            let p = *p;
                            f.idx += 1;
                            return Action::Compute(p);
                        }
                        POp::Locked { lock, work } => {
                            let (lock, work) = (*lock, *work);
                            let sim = self.rt.lock_for(env, lock);
                            // Start the stage machine (idx advances at the
                            // final stage).
                            if let Some(Frame::Seq(f)) = self.stack.last_mut() {
                                f.lock_stage = Some((LockStage::AcquireOvh, sim, work));
                            }
                            continue;
                        }
                        POp::Par(sec) => {
                            let sec = sec.clone();
                            f.idx += 1;
                            let fork = self.rt.overheads.parallel_start;
                            #[cfg(feature = "obs")]
                            crate::obs_span(env, true, "omp_parallel");
                            let frame = self.enter_region(env, &sec);
                            self.stack.push(Frame::Region(frame));
                            // Fork overhead charged to the master before it
                            // starts dispatching.
                            if fork > 0 {
                                return Action::Compute(WorkPacket::cpu(fork));
                            }
                            continue;
                        }
                        POp::Pipe(pipe) => {
                            let pipe = pipe.clone();
                            f.idx += 1;
                            let fork = self.rt.overheads.parallel_start;
                            let ctl = crate::pipeline::PipeCtl::new(pipe);
                            ctl.set_master(env.me());
                            crate::pipeline::spawn_stages(env, &self.rt, &ctl);
                            self.stack.push(Frame::PipeWait(ctl));
                            if fork > 0 {
                                return Action::Compute(WorkPacket::cpu(fork));
                            }
                            continue;
                        }
                    }
                }
                Frame::PipeWait(ctl) => {
                    if ctl.finished() {
                        let join = self.rt.overheads.parallel_end;
                        self.stack.pop();
                        if join > 0 {
                            return Action::Compute(WorkPacket::cpu(join));
                        }
                        continue;
                    }
                    return Action::Park;
                }
                Frame::Region(f) => match f.phase {
                    RPhase::StartOvh => {
                        f.phase = RPhase::PayDispatch;
                        let ovh = self.rt.overheads.worker_start;
                        if ovh > 0 {
                            return Action::Compute(WorkPacket::cpu(ovh));
                        }
                        continue;
                    }
                    RPhase::PayDispatch => {
                        f.phase = RPhase::Grab;
                        let ovh = f.ctl.dispatch_ovh;
                        if ovh > 0 {
                            return Action::Compute(WorkPacket::cpu(ovh));
                        }
                        continue;
                    }
                    RPhase::Grab => {
                        let chunk = f.ctl.dispenser.borrow_mut().next_chunk(f.rank);
                        match chunk {
                            Some((s, e)) => {
                                obs_env!(
                                    env,
                                    ChunkDispatch {
                                        worker: f.rank,
                                        lo: s as u32,
                                        hi: e as u32,
                                    }
                                );
                                f.chunk = Some((s, e));
                                f.pos = s;
                                f.phase = RPhase::IterOvh;
                            }
                            None => {
                                f.phase = RPhase::EndBarrier;
                            }
                        }
                        continue;
                    }
                    RPhase::IterOvh => {
                        f.phase = RPhase::PushTask;
                        let ovh = self.rt.overheads.iter_start;
                        if ovh > 0 {
                            return Action::Compute(WorkPacket::cpu(ovh));
                        }
                        continue;
                    }
                    RPhase::PushTask => {
                        let (_, e) = f.chunk.expect("chunk set in Grab");
                        let task = f.ctl.tasks[f.pos].clone();
                        f.pos += 1;
                        f.phase = if f.pos < e {
                            RPhase::IterOvh
                        } else {
                            RPhase::PayDispatch
                        };
                        self.stack.push(Frame::Seq(SeqFrame::new(task)));
                        continue;
                    }
                    RPhase::EndBarrier => {
                        f.phase = RPhase::Epilogue;
                        if let Some(b) = f.ctl.barrier {
                            return Action::Barrier(b);
                        }
                        continue;
                    }
                    RPhase::Epilogue => {
                        let is_master = f.is_master;
                        let join = self.rt.overheads.parallel_end;
                        if !is_master {
                            return Action::Exit;
                        }
                        #[cfg(feature = "obs")]
                        crate::obs_span(env, false, "omp_parallel");
                        self.stack.pop();
                        if join > 0 {
                            return Action::Compute(WorkPacket::cpu(join));
                        }
                        continue;
                    }
                },
            }
        }
    }
}

/// Run `program` on a fresh machine with the given configuration, runtime
/// overheads, and default team size. Returns the machine's statistics.
pub fn run_program(
    cfg: MachineConfig,
    program: &ParallelProgram,
    overheads: OmpOverheads,
    team: u32,
) -> Result<RunStats, RunError> {
    let mut machine = Machine::new(cfg);
    run_program_on(&mut machine, program, overheads, team)
}

/// Run `program` on an existing (fresh) machine — use this to configure
/// the machine first, e.g. [`Machine::enable_tracing`] for Gantt charts.
pub fn run_program_on(
    machine: &mut Machine,
    program: &ParallelProgram,
    overheads: OmpOverheads,
    team: u32,
) -> Result<RunStats, RunError> {
    let rt = OmpRuntime::new(overheads, team);
    machine.spawn(Worker::master(rt, program));
    machine.run()
}
