//! Pipeline-region execution (the §VII-E pipelining extension).
//!
//! A `POp::Pipe` spawns one simulated thread per stage. Stage `s`
//! processes items strictly in order; it may start item `i` only after
//! stage `s-1` finished item `i` (the upstream hand-off). Stage threads
//! park when their input isn't ready and are unparked by their upstream
//! neighbour after every item — the standard bounded(1)-queue
//! coarse-grained pipeline of Thies et al. (paper ref. 23).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use machsim::prog::{POp, PipeSection};
use machsim::{Action, Env, SimLockId, ThreadBody, ThreadId, WorkPacket};

use crate::worker::OmpRuntime;

/// Shared control block of one pipeline instance.
pub struct PipeCtl {
    section: PipeSection,
    /// Items completed per stage.
    done: Vec<Cell<usize>>,
    /// Stage thread ids (filled at spawn) + the master to wake at the end.
    stage_tids: RefCell<Vec<Option<ThreadId>>>,
    master: Cell<Option<ThreadId>>,
}

impl PipeCtl {
    /// Build the control block.
    pub fn new(section: PipeSection) -> Rc<Self> {
        let stages = section.stages as usize;
        Rc::new(PipeCtl {
            section,
            done: (0..stages).map(|_| Cell::new(0)).collect(),
            stage_tids: RefCell::new(vec![None; stages]),
            master: Cell::new(None),
        })
    }

    /// True when the whole stream has drained.
    pub fn finished(&self) -> bool {
        match self.done.last() {
            Some(d) => d.get() >= self.section.items.len(),
            None => true,
        }
    }

    /// Record the master thread to unpark at completion.
    pub fn set_master(&self, tid: ThreadId) {
        self.master.set(Some(tid));
    }
}

/// Spawn the stage threads of `ctl` (called by the encountering worker).
pub fn spawn_stages(env: &mut dyn Env, rt: &Rc<OmpRuntime>, ctl: &Rc<PipeCtl>) {
    let stages = ctl.section.stages as usize;
    for s in 0..stages {
        let tid = env.spawn(Box::new(StageBody {
            rt: rt.clone(),
            ctl: ctl.clone(),
            stage: s,
            item: 0,
            op_idx: 0,
            lock_stage: None,
        }));
        ctl.stage_tids.borrow_mut()[s] = Some(tid);
    }
}

/// Stage of an in-flight Locked op.
#[derive(Debug, Clone, Copy)]
enum LockPhase {
    Acquire,
    Body,
    Release,
}

/// The per-stage thread body.
struct StageBody {
    rt: Rc<OmpRuntime>,
    ctl: Rc<PipeCtl>,
    stage: usize,
    item: usize,
    op_idx: usize,
    lock_stage: Option<(LockPhase, SimLockId, WorkPacket)>,
}

impl ThreadBody for StageBody {
    fn step(&mut self, env: &mut dyn Env) -> Action {
        loop {
            // Finish an in-flight Locked op first.
            if let Some((phase, lock, work)) = self.lock_stage {
                match phase {
                    LockPhase::Acquire => {
                        self.lock_stage = Some((LockPhase::Body, lock, work));
                        return Action::Acquire(lock);
                    }
                    LockPhase::Body => {
                        self.lock_stage = Some((LockPhase::Release, lock, work));
                        return Action::Compute(work);
                    }
                    LockPhase::Release => {
                        self.lock_stage = None;
                        self.op_idx += 1;
                        return Action::Release(lock);
                    }
                }
            }

            let items = &self.ctl.section.items;
            if self.item >= items.len() {
                // Stream drained for this stage.
                if self.stage + 1 == self.ctl.section.stages as usize {
                    if let Some(master) = self.ctl.master.get() {
                        env.unpark(master);
                    }
                }
                return Action::Exit;
            }

            // Upstream hand-off: stage s waits for stage s-1 on this item.
            if self.stage > 0 && self.ctl.done[self.stage - 1].get() <= self.item {
                return Action::Park;
            }

            let ops = &items[self.item].stages[self.stage];
            match ops.get(self.op_idx) {
                Some(POp::Work(p)) => {
                    let p = *p;
                    self.op_idx += 1;
                    return Action::Compute(p);
                }
                Some(POp::Locked { lock, work }) => {
                    let (lock, work) = (*lock, *work);
                    let sim = self.rt.lock_for(env, lock);
                    self.lock_stage = Some((LockPhase::Acquire, sim, work));
                    continue;
                }
                Some(other) => {
                    unreachable!("pipeline stages may only contain Work/Locked ops, got {other:?}")
                }
                None => {
                    // Item finished at this stage: publish and wake the
                    // downstream neighbour.
                    self.item += 1;
                    self.op_idx = 0;
                    self.ctl.done[self.stage].set(self.item);
                    if self.stage + 1 < self.ctl.section.stages as usize {
                        if let Some(next) = self.ctl.stage_tids.borrow()[self.stage + 1] {
                            env.unpark(next);
                        }
                    }
                    continue;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machsim::prog::{ParallelProgram, PipeItem};
    use machsim::{Machine, MachineConfig};
    use std::rc::Rc;

    use crate::overhead::OmpOverheads;
    use crate::worker::{run_program, Worker};

    fn pipe_prog(items: Vec<Vec<u64>>) -> ParallelProgram {
        let stages = items[0].len() as u32;
        let items = items
            .into_iter()
            .map(|lens| {
                Rc::new(PipeItem {
                    stages: lens
                        .into_iter()
                        .map(|l| vec![POp::Work(WorkPacket::cpu(l))])
                        .collect(),
                })
            })
            .collect();
        ParallelProgram {
            ops: vec![POp::Pipe(PipeSection { items, stages })],
        }
    }

    #[test]
    fn balanced_pipeline_reaches_stage_count_speedup() {
        // 3 equal stages, 30 items: makespan → n+S-1 stage-times.
        let items: Vec<Vec<u64>> = (0..30).map(|_| vec![1_000; 3]).collect();
        let prog = pipe_prog(items);
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 4).unwrap();
        // Ideal pipelined makespan: (30 + 2) × 1000 = 32_000.
        assert_eq!(s.elapsed_cycles, 32_000, "elapsed {}", s.elapsed_cycles);
    }

    #[test]
    fn bottleneck_stage_governs_throughput() {
        // Middle stage twice as long: throughput = 1/2000.
        let items: Vec<Vec<u64>> = (0..20).map(|_| vec![1_000, 2_000, 500]).collect();
        let prog = pipe_prog(items);
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 4).unwrap();
        // Lower bound: fill (1000) + 20 × 2000 + drain (500).
        assert!(s.elapsed_cycles >= 20 * 2_000);
        assert!(
            s.elapsed_cycles <= 20 * 2_000 + 4_000,
            "elapsed {}",
            s.elapsed_cycles
        );
    }

    #[test]
    fn single_stage_pipeline_is_serial() {
        let items: Vec<Vec<u64>> = (0..10).map(|_| vec![700]).collect();
        let prog = pipe_prog(items);
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 4).unwrap();
        assert_eq!(s.elapsed_cycles, 7_000);
    }

    #[test]
    fn more_stages_than_cores_still_completes() {
        let items: Vec<Vec<u64>> = (0..12).map(|_| vec![1_000; 6]).collect();
        let prog = pipe_prog(items);
        let mut cfg = MachineConfig::small(2);
        cfg.quantum_cycles = 2_000;
        let s = run_program(cfg, &prog, OmpOverheads::zero(), 2).unwrap();
        let work = 12 * 6 * 1_000;
        assert!(s.elapsed_cycles >= work / 2);
        assert!(s.busy_cycles >= work);
    }

    #[test]
    fn empty_pipeline_is_noop() {
        let prog = ParallelProgram {
            ops: vec![POp::Pipe(PipeSection {
                items: vec![],
                stages: 0,
            })],
        };
        let s = run_program(MachineConfig::small(2), &prog, OmpOverheads::zero(), 2).unwrap();
        assert!(s.elapsed_cycles < 1_000);
    }

    #[test]
    fn locked_stage_ops_serialise_across_items() {
        // Stage 1 of every item locks the same mutex — which it would
        // anyway as a single stage thread; this exercises the Locked path.
        let item = Rc::new(PipeItem {
            stages: vec![
                vec![POp::Work(WorkPacket::cpu(100))],
                vec![POp::Locked {
                    lock: 5,
                    work: WorkPacket::cpu(300),
                }],
            ],
        });
        let prog = ParallelProgram {
            ops: vec![POp::Pipe(PipeSection {
                items: vec![item.clone(), item.clone(), item],
                stages: 2,
            })],
        };
        let s = run_program(MachineConfig::small(4), &prog, OmpOverheads::zero(), 4).unwrap();
        assert!(s.elapsed_cycles >= 100 + 3 * 300);
        assert_eq!(s.lock_acquisitions, 3);
    }

    /// Direct Machine + Worker smoke test (bypassing run_program) to pin
    /// down master park/unpark behaviour.
    #[test]
    fn master_waits_for_drain() {
        let items: Vec<Vec<u64>> = (0..5).map(|_| vec![500, 500]).collect();
        let mut prog = pipe_prog(items);
        prog.ops.push(POp::Work(WorkPacket::cpu(1_000)));
        let mut m = Machine::new(MachineConfig::small(4));
        let rt = OmpRuntime::new(OmpOverheads::zero(), 4);
        m.spawn(Worker::master(rt, &prog));
        let s = m.run().unwrap();
        // Pipeline (5+1)×500 = 3000, then the serial tail.
        assert_eq!(s.elapsed_cycles, 3_000 + 1_000);
    }
}
