//! Property tests for the OpenMP 3.0 task-pool runtime.

use std::rc::Rc;

use proptest::prelude::*;

use machsim::prog::{POp, ParSection, ParallelProgram, TaskBody};
use machsim::{MachineConfig, WorkPacket};
use omp_rt::{run_program_tasks, TaskOverheads};

fn loop_prog(lens: &[u64]) -> ParallelProgram {
    let tasks = lens
        .iter()
        .map(|&l| {
            Rc::new(TaskBody {
                ops: vec![POp::Work(WorkPacket::cpu(l))],
            })
        })
        .collect();
    ParallelProgram {
        ops: vec![POp::Par(ParSection::new(tasks))],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// All task work executes exactly once; makespan bounded by
    /// [work/cores, serial + slack].
    #[test]
    fn all_work_executed(
        lens in proptest::collection::vec(1_000u64..50_000, 1..32),
        workers in 1u32..9,
    ) {
        let prog = loop_prog(&lens);
        let stats = run_program_tasks(
            MachineConfig::small(8),
            &prog,
            TaskOverheads::zero(),
            workers,
        )
        .expect("no deadlock");
        let work: u64 = lens.iter().sum();
        prop_assert!(stats.busy_cycles >= work);
        prop_assert!(stats.elapsed_cycles >= work / workers.min(8) as u64);
        prop_assert!(
            stats.elapsed_cycles <= work + 100_000,
            "elapsed {} far beyond serial {work}",
            stats.elapsed_cycles
        );
    }

    /// Nested task graphs complete on the fixed pool.
    #[test]
    fn nested_tasks_complete(
        outer in 1usize..8,
        inner in 1usize..8,
        len in 1_000u64..20_000,
        workers in 1u32..5,
    ) {
        let inner_sec = ParSection::new(
            (0..inner)
                .map(|_| Rc::new(TaskBody { ops: vec![POp::Work(WorkPacket::cpu(len))] }))
                .collect(),
        );
        let outer_task = Rc::new(TaskBody { ops: vec![POp::Par(inner_sec)] });
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection::new(
                (0..outer).map(|_| outer_task.clone()).collect(),
            ))],
        };
        let stats = run_program_tasks(
            MachineConfig::small(4),
            &prog,
            TaskOverheads::westmere_scaled(),
            workers,
        )
        .unwrap();
        prop_assert_eq!(stats.threads_spawned, workers);
        prop_assert!(stats.busy_cycles >= (outer * inner) as u64 * len);
    }

    /// Determinism.
    #[test]
    fn task_pool_deterministic(
        lens in proptest::collection::vec(500u64..20_000, 1..20),
        workers in 1u32..6,
    ) {
        let prog = loop_prog(&lens);
        let run = || {
            run_program_tasks(
                MachineConfig::small(4),
                &prog,
                TaskOverheads::westmere_scaled(),
                workers,
            )
            .unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// The central queue is a genuine serialisation point: with heavy
    /// per-op queue costs, N tiny tasks take at least N × (push + pop)
    /// regardless of worker count.
    #[test]
    fn queue_cost_lower_bound(
        n in 8usize..200,
        workers in 2u32..8,
    ) {
        let prog = loop_prog(&vec![10u64; n]);
        let mut ovh = TaskOverheads::zero();
        ovh.push = 100;
        ovh.pop = 100;
        let stats = run_program_tasks(MachineConfig::small(8), &prog, ovh, workers).unwrap();
        let queue_serial = n as u64 * 200;
        prop_assert!(
            stats.elapsed_cycles >= queue_serial,
            "elapsed {} below central-queue serialisation {queue_serial}",
            stats.elapsed_cycles
        );
    }
}
