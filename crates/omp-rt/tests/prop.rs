//! Property tests for the OpenMP-like runtime: every schedule must
//! execute every task exactly once, makespans must respect work bounds,
//! and the runtime must be deterministic.

use std::rc::Rc;

use proptest::prelude::*;

use machsim::prog::{POp, ParSection, ParallelProgram, Schedule, TaskBody};
use machsim::{MachineConfig, WorkPacket};
use omp_rt::{run_program, Dispenser, OmpOverheads};

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::static_block()),
        (1u32..8).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1u32..8).prop_map(|c| Schedule::Dynamic { chunk: c }),
        (1u32..4).prop_map(|m| Schedule::Guided { min_chunk: m }),
    ]
}

fn loop_prog(lens: &[u64], schedule: Schedule, team: Option<u32>) -> ParallelProgram {
    let tasks = lens
        .iter()
        .map(|&l| {
            Rc::new(TaskBody {
                ops: vec![POp::Work(WorkPacket::cpu(l))],
            })
        })
        .collect();
    ParallelProgram {
        ops: vec![POp::Par(ParSection {
            tasks,
            schedule,
            nowait: false,
            team,
        })],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every dispenser covers the iteration space exactly once, for any
    /// (schedule, n, team) combination and any polling order.
    #[test]
    fn dispensers_partition_exactly(
        schedule in schedule_strategy(),
        n in 0usize..500,
        team in 1u32..16,
        poll_seed in 0u64..1000,
    ) {
        let mut d = Dispenser::new(schedule, n, team);
        let mut hits = vec![0u32; n];
        let mut done = vec![false; team as usize];
        let mut x = poll_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut remaining = team;
        while remaining > 0 {
            // Pseudo-random polling order models workers finishing at
            // arbitrary times.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let r = (x % team as u64) as u32;
            if done[r as usize] {
                continue;
            }
            match d.next_chunk(r) {
                Some((s, e)) => {
                    prop_assert!(s < e && e <= n, "bad chunk ({s},{e})");
                    for h in &mut hits[s..e] {
                        *h += 1;
                    }
                }
                None => {
                    done[r as usize] = true;
                    remaining -= 1;
                }
            }
        }
        prop_assert!(hits.iter().all(|&h| h == 1), "not covered exactly once");
    }

    /// The runtime executes all work: busy cycles ≥ task work, and
    /// makespan lies between ideal and serial (+ overhead slack).
    #[test]
    fn all_work_executed_under_any_schedule(
        lens in proptest::collection::vec(100u64..50_000, 1..40),
        schedule in schedule_strategy(),
        team in 1u32..13,
    ) {
        let prog = loop_prog(&lens, schedule, Some(team));
        let stats = run_program(
            MachineConfig::small(12),
            &prog,
            OmpOverheads::zero(),
            team,
        )
        .expect("runtime must not deadlock");
        let work: u64 = lens.iter().sum();
        prop_assert_eq!(stats.busy_cycles, work);
        let ideal = work / team.min(12) as u64;
        prop_assert!(stats.elapsed_cycles >= ideal);
        prop_assert!(stats.elapsed_cycles <= work + 1);
    }

    /// Oversubscribed teams (team > cores) still complete correctly.
    #[test]
    fn oversubscription_completes(
        lens in proptest::collection::vec(1_000u64..20_000, 4..24),
        team in 5u32..32,
    ) {
        let mut cfg = MachineConfig::small(4);
        cfg.quantum_cycles = 2_000;
        let prog = loop_prog(&lens, Schedule::dynamic1(), Some(team));
        let stats = run_program(cfg, &prog, OmpOverheads::zero(), team).unwrap();
        let work: u64 = lens.iter().sum();
        prop_assert_eq!(stats.busy_cycles, work);
        prop_assert!(stats.elapsed_cycles >= work / 4);
    }

    /// Determinism for arbitrary programs.
    #[test]
    fn runtime_is_deterministic(
        lens in proptest::collection::vec(100u64..30_000, 1..20),
        schedule in schedule_strategy(),
        team in 1u32..8,
    ) {
        let prog = loop_prog(&lens, schedule, Some(team));
        let run = || {
            run_program(
                MachineConfig::small(4),
                &prog,
                OmpOverheads::westmere_scaled(),
                team,
            )
            .unwrap()
        };
        prop_assert_eq!(run(), run());
    }

    /// Locked sections serialise: a loop whose tasks are entirely inside
    /// one lock has makespan ≥ total locked work.
    #[test]
    fn locks_fully_serialise(
        lens in proptest::collection::vec(100u64..10_000, 2..12),
        team in 2u32..8,
    ) {
        let tasks = lens
            .iter()
            .map(|&l| {
                Rc::new(TaskBody {
                    ops: vec![POp::Locked { lock: 1, work: WorkPacket::cpu(l) }],
                })
            })
            .collect();
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks,
                schedule: Schedule::dynamic1(),
                nowait: false,
                team: Some(team),
            })],
        };
        let stats =
            run_program(MachineConfig::small(8), &prog, OmpOverheads::zero(), team).unwrap();
        let work: u64 = lens.iter().sum();
        prop_assert!(stats.elapsed_cycles >= work);
    }
}
