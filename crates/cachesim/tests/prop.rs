//! Property tests: the set-associative simulator against a brute-force
//! reference model, and conservation laws of the counter layer.

use proptest::prelude::*;

use cachesim::{Cache, CacheConfig, HierarchyConfig, MemSim};

/// A naive fully-explicit LRU model of a single cache level.
struct RefCache {
    sets: Vec<Vec<u64>>, // per set: line tags, most-recent last
    ways: usize,
    set_mask: u64,
    line_shift: u32,
    dirty: std::collections::HashSet<u64>,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); cfg.sets() as usize],
            ways: cfg.ways as usize,
            set_mask: cfg.sets() - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            dirty: Default::default(),
        }
    }

    /// Returns (hit, writeback_line_addr).
    fn access(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let slot = self.sets[set].iter().position(|&t| t == line);
        match slot {
            Some(i) => {
                let t = self.sets[set].remove(i);
                self.sets[set].push(t);
                if is_write {
                    self.dirty.insert(line);
                }
                (true, None)
            }
            None => {
                let mut wb = None;
                if self.sets[set].len() == self.ways {
                    let victim = self.sets[set].remove(0);
                    if self.dirty.remove(&victim) {
                        wb = Some(victim << self.line_shift);
                    }
                }
                self.sets[set].push(line);
                if is_write {
                    self.dirty.insert(line);
                }
                (false, wb)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache agrees with the reference model on every
    /// access outcome (hit/miss and writeback), for arbitrary streams.
    #[test]
    fn cache_matches_reference_model(
        accesses in proptest::collection::vec((0u64..4096, proptest::bool::ANY), 1..400),
    ) {
        let cfg = CacheConfig { capacity_bytes: 512, ways: 2, line_bytes: 64 };
        let mut real = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &(addr, is_write)) in accesses.iter().enumerate() {
            let r = real.access(addr, is_write);
            let (hit, wb) = reference.access(addr, is_write);
            prop_assert_eq!(r.hit, hit, "access {}: addr {:#x} write {}", i, addr, is_write);
            prop_assert_eq!(r.writeback, wb, "access {}: writeback mismatch", i);
        }
    }

    /// Counter conservation: loads + stores == memory instructions; the
    /// miss hierarchy is monotone (LLC ≤ L2 ≤ L1 misses); DRAM bytes are
    /// line-quantised.
    #[test]
    fn hierarchy_counter_conservation(
        accesses in proptest::collection::vec((0u64..100_000, proptest::bool::ANY), 1..500),
        work in 0u64..10_000,
    ) {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        m.work(work);
        for &(addr, is_write) in &accesses {
            if is_write {
                m.write(addr);
            } else {
                m.read(addr);
            }
        }
        let c = m.snapshot();
        prop_assert_eq!(c.loads + c.stores, accesses.len() as u64);
        prop_assert_eq!(c.instructions, work + accesses.len() as u64);
        prop_assert!(c.llc_misses <= c.l2_misses);
        prop_assert!(c.l2_misses <= c.l1_misses);
        prop_assert!(c.l1_misses <= accesses.len() as u64);
        prop_assert_eq!(c.dram_bytes % 64, 0);
        prop_assert_eq!(c.dram_bytes, (c.llc_misses + c.llc_writebacks) * 64);
    }

    /// Re-running the identical stream after reset yields identical
    /// counters (determinism), and a second pass over a cache-resident
    /// stream has no LLC misses.
    #[test]
    fn determinism_and_warm_cache(
        lines in proptest::collection::vec(0u64..64, 1..64),
    ) {
        let run = || {
            let mut m = MemSim::new(HierarchyConfig::tiny());
            for &l in &lines {
                m.read(l * 64);
            }
            m.snapshot()
        };
        prop_assert_eq!(run(), run());

        // ≤ 64 distinct lines fit the 8 KiB tiny LLC (128 lines): a warm
        // second pass misses nothing at the LLC.
        let mut m = MemSim::new(HierarchyConfig::tiny());
        for &l in &lines {
            m.read(l * 64);
        }
        let cold = m.snapshot();
        for &l in &lines {
            m.read(l * 64);
        }
        let warm = m.snapshot();
        prop_assert_eq!(warm.llc_misses, cold.llc_misses, "warm pass must not miss LLC");
    }
}
