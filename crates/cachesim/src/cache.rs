//! A single set-associative, write-back/write-allocate, true-LRU cache.

use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheConfig {
    /// Number of sets (capacity / (ways × line)).
    pub fn sets(&self) -> u64 {
        (self.capacity_bytes / (self.ways as u64 * self.line_bytes)).max(1)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// Outcome of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The line was present.
    pub hit: bool,
    /// A dirty line was evicted (write-back traffic to the next level).
    pub writeback: Option<u64>,
}

/// One cache level.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
}

impl Cache {
    /// Build an empty cache. `sets()` must be a power of two.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        Cache {
            sets: vec![vec![Way::default(); cfg.ways as usize]; sets as usize],
            set_mask: sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            clock: 0,
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access the line containing `addr`. `is_write` marks the line dirty
    /// on hit or fill. Returns hit/miss and any dirty eviction (by line
    /// address) that the next level must absorb.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.clock += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        let ways = &mut self.sets[set];

        // Hit path.
        for w in ways.iter_mut() {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                w.dirty |= is_write;
                return AccessResult {
                    hit: true,
                    writeback: None,
                };
            }
        }

        // Miss: fill over the LRU way.
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.stamp } else { 0 })
            .map(|(i, _)| i)
            .expect("cache has at least one way");
        let evicted = ways[victim];
        let writeback = if evicted.valid && evicted.dirty {
            // Reconstruct the evicted line address.
            let evicted_line = (evicted.tag << self.set_mask.count_ones()) | set as u64;
            Some(evicted_line << self.line_shift)
        } else {
            None
        };
        ways[victim] = Way {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.clock,
        };
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Install a line without an explicit demand access (used to absorb a
    /// write-back from an upper level). Returns any dirty eviction.
    pub fn install_dirty(&mut self, addr: u64) -> Option<u64> {
        let r = self.access(addr, true);
        r.writeback
    }

    /// Drop all contents (between profiling phases).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for w in set.iter_mut() {
                *w = Way::default();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn repeated_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1010, false).hit, "same line, different offset");
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to the same set (set stride = 4 lines = 256B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // refresh a; b is now LRU
        c.access(d, false); // evicts b
        assert!(c.access(a, false).hit);
        assert!(!c.access(b, false).hit, "b should have been evicted");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x0000, true); // dirty
        c.access(0x0100, false);
        let r = c.access(0x0200, false); // evicts dirty 0x0000
        assert_eq!(r.writeback, Some(0x0000));
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0x0000, false);
        c.access(0x0100, false);
        let r = c.access(0x0200, false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = tiny();
        c.access(0x40, true);
        c.flush();
        assert!(!c.access(0x40, false).hit);
    }

    #[test]
    fn capacity_streaming_misses() {
        // Stream 4 KiB through a 512 B cache: every new line misses.
        let mut c = tiny();
        let mut misses = 0;
        for addr in (0..4096u64).step_by(64) {
            if !c.access(addr, false).hit {
                misses += 1;
            }
        }
        assert_eq!(misses, 64);
    }

    #[test]
    fn sets_must_be_power_of_two() {
        let cfg = CacheConfig {
            capacity_bytes: 512,
            ways: 2,
            line_bytes: 64,
        };
        assert_eq!(cfg.sets(), 4);
    }
}
