#![warn(missing_docs)]

//! A set-associative cache-hierarchy simulator with PAPI-style counters.
//!
//! The paper's memory profiling reads hardware performance counters (LLC
//! misses, instruction counts — §IV, §V) while the annotated serial
//! program runs. This environment has no perf counters, so the benchmark
//! kernels in `workloads` issue their *actual* memory references through
//! this simulator instead; the counter values the memory model consumes
//! (`N`, `T`, `D`, `MPI`, δ) are then derived from genuine reference
//! streams.
//!
//! The hierarchy is L1 → L2 → LLC, write-back/write-allocate, true-LRU
//! within each set. The cost model converts counters into virtual cycles:
//!
//! `T = N·CPI_base + miss_L1·lat_L2 + miss_L2·lat_LLC + miss_LLC·ω₀`
//!
//! with ω₀ equal to the machine simulator's uncontended DRAM stall so the
//! serial profile and the parallel machine agree on memory cost.

pub mod cache;
pub mod counters;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig};
pub use counters::Counters;
pub use hierarchy::{CostModel, HierarchyConfig, MemSim};
