//! PAPI-style counter set.

use std::ops::Sub;

use serde::{Deserialize, Serialize};

/// Counter snapshot, in the spirit of `PAPI_TOT_INS` / `PAPI_TOT_CYC` /
/// `PAPI_L3_TCM` etc. Interval deltas are taken by subtraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Retired instructions (memory ops count one each; `work` adds more).
    pub instructions: u64,
    /// Virtual cycles per the cost model.
    pub cycles: u64,
    /// Loads observed.
    pub loads: u64,
    /// Stores observed.
    pub stores: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC misses (DRAM accesses, the paper's `D`).
    pub llc_misses: u64,
    /// Dirty LLC evictions written back to DRAM.
    pub llc_writebacks: u64,
    /// Total DRAM bytes (fills + writebacks).
    pub dram_bytes: u64,
}

impl Counters {
    /// LLC misses per instruction (`MPI`).
    pub fn mpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.instructions as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// DRAM traffic in bytes per cycle.
    pub fn traffic_bytes_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes as f64 / self.cycles as f64
        }
    }
}

impl Sub for Counters {
    type Output = Counters;

    fn sub(self, rhs: Counters) -> Counters {
        Counters {
            instructions: self.instructions - rhs.instructions,
            cycles: self.cycles - rhs.cycles,
            loads: self.loads - rhs.loads,
            stores: self.stores - rhs.stores,
            l1_misses: self.l1_misses - rhs.l1_misses,
            l2_misses: self.l2_misses - rhs.l2_misses,
            llc_misses: self.llc_misses - rhs.llc_misses,
            llc_writebacks: self.llc_writebacks - rhs.llc_writebacks,
            dram_bytes: self.dram_bytes - rhs.dram_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_by_subtraction() {
        let a = Counters {
            instructions: 100,
            cycles: 200,
            llc_misses: 5,
            ..Default::default()
        };
        let b = Counters {
            instructions: 350,
            cycles: 900,
            llc_misses: 25,
            ..Default::default()
        };
        let d = b - a;
        assert_eq!(d.instructions, 250);
        assert_eq!(d.cycles, 700);
        assert_eq!(d.llc_misses, 20);
        assert!((d.mpi() - 0.08).abs() < 1e-12);
        assert!((d.cpi() - 2.8).abs() < 1e-12);
    }
}
