//! The three-level hierarchy and its virtual-cycle cost model.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheConfig};
use crate::counters::Counters;

/// Latency/cost parameters converting counters to virtual cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Base cycles per instruction when everything hits L1 (`CPI_$`-ish).
    pub cpi_base: f64,
    /// Extra cycles for an L1 miss served by L2.
    pub l2_latency: f64,
    /// Extra cycles for an L2 miss served by LLC.
    pub llc_latency: f64,
    /// Extra cycles for an LLC miss served by DRAM; must equal the machine
    /// simulator's uncontended stall ω₀ so serial profiles and parallel
    /// runs agree.
    pub dram_stall: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            cpi_base: 0.75,
            l2_latency: 8.0,
            llc_latency: 26.0,
            dram_stall: 60.0,
        }
    }
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
    /// Cost parameters.
    pub cost: CostModel,
}

impl HierarchyConfig {
    /// The scaled Westmere hierarchy: 32 KiB L1, 256 KiB L2, 1.5 MiB LLC
    /// (the real machine's 12 MiB scaled 8× down along with the benchmark
    /// footprints — DESIGN.md §6).
    pub fn westmere_scaled() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
            },
            l2: CacheConfig {
                capacity_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
            },
            llc: CacheConfig {
                capacity_bytes: 1536 << 10,
                ways: 12,
                line_bytes: 64,
            },
            cost: CostModel::default(),
        }
    }

    /// A tiny hierarchy for unit tests.
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig {
                capacity_bytes: 512,
                ways: 2,
                line_bytes: 64,
            },
            l2: CacheConfig {
                capacity_bytes: 2048,
                ways: 4,
                line_bytes: 64,
            },
            llc: CacheConfig {
                capacity_bytes: 8192,
                ways: 4,
                line_bytes: 64,
            },
            cost: CostModel::default(),
        }
    }
}

/// The memory simulator the benchmark kernels run against: a virtual data
/// path (addresses in, counters out) plus a pure-compute accumulator.
#[derive(Debug, Clone)]
pub struct MemSim {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    llc: Cache,
    counters: Counters,
}

impl MemSim {
    /// Fresh, empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemSim {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            llc: Cache::new(cfg.llc),
            counters: Counters::default(),
            cfg,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Account `n` pure-compute instructions (no memory reference).
    #[inline]
    pub fn work(&mut self, n: u64) {
        self.counters.instructions += n;
    }

    /// Simulate a load of the byte at `addr`.
    #[inline]
    pub fn read(&mut self, addr: u64) {
        self.counters.loads += 1;
        self.access(addr, false);
    }

    /// Simulate a store to the byte at `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64) {
        self.counters.stores += 1;
        self.access(addr, true);
    }

    fn access(&mut self, addr: u64, is_write: bool) {
        self.counters.instructions += 1;
        let r1 = self.l1.access(addr, is_write);
        if r1.hit {
            return;
        }
        self.counters.l1_misses += 1;
        // L1 write-back goes to L2.
        if let Some(wb) = r1.writeback {
            if let Some(wb2) = self.l2.install_dirty(wb) {
                self.absorb_llc_writeback(wb2);
            }
        }
        let r2 = self.l2.access(addr, false);
        if r2.hit {
            return;
        }
        self.counters.l2_misses += 1;
        if let Some(wb) = r2.writeback {
            self.absorb_llc_writeback(wb);
        }
        let r3 = self.llc.access(addr, false);
        if r3.hit {
            return;
        }
        self.counters.llc_misses += 1;
        self.counters.dram_bytes += self.cfg.llc.line_bytes;
        if let Some(_evicted) = r3.writeback {
            self.counters.llc_writebacks += 1;
            self.counters.dram_bytes += self.cfg.llc.line_bytes;
        }
    }

    fn absorb_llc_writeback(&mut self, addr: u64) {
        if let Some(_evicted) = self.llc.install_dirty(addr) {
            self.counters.llc_writebacks += 1;
            self.counters.dram_bytes += self.cfg.llc.line_bytes;
        }
    }

    /// Current counters with `cycles` filled in from the cost model.
    pub fn snapshot(&self) -> Counters {
        let mut c = self.counters;
        let cost = &self.cfg.cost;
        c.cycles = (c.instructions as f64 * cost.cpi_base
            + c.l1_misses as f64 * cost.l2_latency
            + c.l2_misses as f64 * cost.llc_latency
            + c.llc_misses as f64 * cost.dram_stall)
            .round() as u64;
        c
    }

    /// Virtual cycles elapsed so far.
    pub fn cycles(&self) -> u64 {
        self.snapshot().cycles
    }

    /// Reset counters and contents (a fresh profiling run).
    pub fn reset(&mut self) {
        self.counters = Counters::default();
        self.l1.flush();
        self.l2.flush();
        self.llc.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_resident_data_stops_missing() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        // 4 KiB working set fits in the 8 KiB LLC.
        for _ in 0..4 {
            for addr in (0..4096u64).step_by(64) {
                m.read(addr);
            }
        }
        let c = m.snapshot();
        // Only the first pass misses LLC (cold misses).
        assert_eq!(c.llc_misses, 64);
        assert_eq!(c.loads, 256);
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        // 1 MiB stream >> 8 KiB LLC.
        for addr in (0..(1u64 << 20)).step_by(64) {
            m.read(addr);
        }
        let c = m.snapshot();
        assert_eq!(c.llc_misses, 1 << 14);
        assert_eq!(c.dram_bytes, (1 << 14) * 64);
    }

    #[test]
    fn dirty_lines_produce_writeback_traffic() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        // Write a 64 KiB stream: every evicted LLC line is dirty.
        for addr in (0..(64u64 << 10)).step_by(64) {
            m.write(addr);
        }
        let c = m.snapshot();
        assert!(c.llc_writebacks > 0);
        assert!(c.dram_bytes > c.llc_misses * 64);
    }

    #[test]
    fn work_only_advances_instructions_and_cycles() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        m.work(1000);
        let c = m.snapshot();
        assert_eq!(c.instructions, 1000);
        assert_eq!(c.cycles, 750); // 1000 × 0.75
        assert_eq!(c.llc_misses, 0);
    }

    #[test]
    fn cycles_include_miss_penalties() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        m.read(0); // cold miss through all levels
        let c = m.snapshot();
        let expected = (1.0f64 * 0.75 + 8.0 + 26.0 + 60.0).round() as u64;
        assert_eq!(c.cycles, expected);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = MemSim::new(HierarchyConfig::tiny());
        m.read(0);
        m.reset();
        let c = m.snapshot();
        assert_eq!(c, Counters::default());
        // And the line is cold again.
        m.read(0);
        assert_eq!(m.snapshot().llc_misses, 1);
    }

    #[test]
    fn mpi_in_expected_regimes() {
        // Resident: MPI ~ 0. Streaming: MPI ~ 1 per (line/stride) loads.
        let mut resident = MemSim::new(HierarchyConfig::tiny());
        for _ in 0..100 {
            for addr in (0..2048u64).step_by(8) {
                resident.read(addr);
            }
        }
        assert!(resident.snapshot().mpi() < 0.005);

        let mut streaming = MemSim::new(HierarchyConfig::tiny());
        for addr in (0..(1u64 << 20)).step_by(8) {
            streaming.read(addr);
        }
        let mpi = streaming.snapshot().mpi();
        assert!((mpi - 1.0 / 8.0).abs() < 0.01, "mpi {mpi}");
    }
}
