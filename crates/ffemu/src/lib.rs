#![warn(missing_docs)]

//! The fast-forwarding emulator (the FF, paper §IV-C/D).
//!
//! The FF predicts parallel execution time *analytically*: it traverses
//! the program tree and advances per-logical-processor clocks with a
//! priority heap that serialises competing tasks in emulated-time order.
//! It models
//!
//! * OpenMP scheduling policies (reusing the exact chunk dispensers of the
//!   runtime, so `static`, `static,c`, `dynamic,c`, `guided` mean the same
//!   thing here and on the machine),
//! * critical sections (a per-lock "free at" clock, granted in emulated
//!   arrival order),
//! * parallel construct overheads (fork/join, per-chunk dispatch,
//!   per-iteration start, lock enter/leave),
//! * burden factors from the memory model, multiplied into every terminal
//!   node of a burdened section (§V).
//!
//! **Deliberate limitation** (paper §IV-D, Fig. 7): nested sections assign
//! their tasks round-robin across logical CPUs starting at the host CPU,
//! and a whole U/L node is assigned non-preemptively. The FF therefore
//! cannot model OS-level preemption or oversubscription — for the paper's
//! two-level nested example it predicts 1.5× where the true (and
//! synthesizer-predicted) speedup is 2×. Reproducing that failure mode is
//! part of reproducing the paper; use `synthemu` for nested/recursive
//! programs.
//!
//! The FF targets an abstract machine, so unlike the synthesizer it can
//! predict for arbitrary CPU counts (Table III).
//!
//! The emulator core is generic over [`proftree::TreeView`]: the public
//! entry points flatten the pointer tree into a [`FlatTree`] arena once
//! and walk the contiguous run buffer ([`predict_flat`] skips even that
//! conversion when the caller already holds an arena), while
//! [`predict_ptr`] runs the identical monomorphised code over the
//! pointer tree. Both views yield the same logical traversal, so the
//! predictions are bit-identical (pinned in `tests/ff_runaware.rs`).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::marker::PhantomData;

use machsim::Schedule;
use omp_rt::{Dispenser, OmpOverheads};
use proftree::{burden_factor, Cycles, FlatTree, LockId, NodeId, ProgramTree, TreeView, ViewKind};
use serde::{Deserialize, Serialize};

/// Record an event on the emulation's recorder at emulated time `$t`.
/// Expands to nothing without the `obs` feature.
#[cfg(feature = "obs")]
macro_rules! obs_at {
    ($st:expr, $t:expr, $($kind:tt)+) => {
        if let Some(h) = $st.obs.as_ref() {
            h.record($t, prophet_obs::EventKind::$($kind)+);
        }
    };
}

#[cfg(not(feature = "obs"))]
macro_rules! obs_at {
    ($st:expr, $t:expr, $($kind:tt)+) => {};
}

/// Options for one FF prediction.
#[derive(Debug, Clone, Copy)]
pub struct FfOptions {
    /// Logical CPU count to predict for.
    pub cpus: u32,
    /// OpenMP schedule to emulate.
    pub schedule: Schedule,
    /// Construct overheads (same table the runtime uses).
    pub overheads: OmpOverheads,
    /// Apply the burden factors stored in the tree's sections.
    pub use_burden: bool,
    /// Extra cycles a *contended* lock acquisition costs: the blocked
    /// thread is descheduled and context-switched back in by the OS when
    /// the lock is handed off. Matches the machine's context-switch cost.
    pub contended_lock_penalty: u64,
    /// Model pipeline regions (§VII-E extension). Tools without pipeline
    /// support (the Suitability-like baseline) set this to `false` and
    /// emulate pipeline regions serially.
    pub model_pipelines: bool,
    /// Test-only escape hatch: disable the run-aware closed-form fast
    /// path and emulate every logical iteration through the heap. The
    /// prediction is bit-identical either way (see `tests/ff_runaware.rs`);
    /// expansion merely restores the O(trip count) emulation cost.
    pub expand_runs: bool,
}

impl FfOptions {
    /// Defaults: `static` schedule, calibrated overheads, burden on.
    pub fn new(cpus: u32) -> Self {
        FfOptions {
            cpus,
            schedule: Schedule::static_block(),
            overheads: OmpOverheads::westmere_scaled(),
            use_burden: true,
            contended_lock_penalty: 2_000,
            model_pipelines: true,
            expand_runs: false,
        }
    }
}

/// Fast-path effectiveness counters from one FF prediction. Exposed via
/// [`predict_counting`]; publish into a metrics registry with
/// [`publish_counters`] (obs feature).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FfCounters {
    /// Child runs advanced in closed form instead of per-iteration heap
    /// emulation (one per `(task, count)` run of a fast-pathed section).
    pub runs_fastpathed: u64,
    /// Logical iterations beyond each run's representative whose heap
    /// emulation was skipped (`Σ count - Σ runs` over fast-pathed
    /// sections).
    pub iters_skipped: u64,
}

/// Prediction output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FfPrediction {
    /// Predicted parallel execution time, cycles.
    pub predicted_cycles: u64,
    /// Serial time from the tree.
    pub serial_cycles: u64,
    /// Predicted speedup.
    pub speedup: f64,
    /// Per top-level section `(serial, predicted)` cycles, program order.
    pub sections: Vec<(u64, u64)>,
}

/// Steadiness table entry for the closed-form fast path: one child run
/// covering logical iterations `[lo, hi)`, each costing `cost` cycles.
struct RunCost {
    lo: u64,
    hi: u64,
    cost: u64,
}

/// Emulator state shared across a whole program emulation, generic over
/// the tree representation.
struct FfState<'t, V: TreeView<'t>> {
    view: V,
    opts: FfOptions,
    /// Global per-CPU busy-until clock (nested sections book time on other
    /// CPUs through this — the paper's round-robin nested model).
    cpu_time: Vec<u64>,
    /// Per-user-lock free-at clock.
    lock_free: HashMap<LockId, u64>,
    /// Recycled task-list buffers: `emulate_section` borrows one per
    /// activation and returns it on exit, so deep grids re-use the same
    /// handful of allocations instead of collecting a fresh `Vec` per
    /// section (the per-node scratch arena).
    task_buf_pool: Vec<Vec<NodeId>>,
    /// Recycled run-cost tables for `fastpath_section` (same discipline
    /// as `task_buf_pool`: borrowed per activation, returned on exit).
    run_cost_pool: Vec<Vec<RunCost>>,
    /// Dense per-node iteration-cost memo for `fastpath_section`,
    /// invalidated wholesale by bumping `stamp` instead of reallocating
    /// a hash map per call. `cost_val[id]` is meaningful only when
    /// `cost_stamp[id] == stamp`.
    cost_stamp: Vec<u64>,
    cost_val: Vec<Option<u64>>,
    stamp: u64,
    /// Fast-path effectiveness counters for this prediction.
    counters: FfCounters,
    /// Structured event recorder (emulated-time timestamps).
    #[cfg(feature = "obs")]
    obs: Option<prophet_obs::ObsHandle>,
    _tree: PhantomData<&'t ()>,
}

impl<'t, V: TreeView<'t>> FfState<'t, V> {
    fn new(view: V, opts: FfOptions) -> Self {
        FfState {
            view,
            opts,
            cpu_time: vec![0; opts.cpus.max(1) as usize],
            lock_free: HashMap::new(),
            task_buf_pool: Vec::new(),
            run_cost_pool: Vec::new(),
            cost_stamp: Vec::new(),
            cost_val: Vec::new(),
            stamp: 0,
            counters: FfCounters::default(),
            #[cfg(feature = "obs")]
            obs: None,
            _tree: PhantomData,
        }
    }
}

/// Record the begin/end of a top-level emulated section span.
#[cfg(feature = "obs")]
fn obs_section_span<'t, V: TreeView<'t>>(st: &FfState<'t, V>, begin: bool, idx: usize, t: u64) {
    if let Some(h) = st.obs.as_ref() {
        let label = h.intern(&format!("sec{idx}"));
        let kind = if begin {
            prophet_obs::EventKind::SpanBegin {
                kind: prophet_obs::SpanKind::EmuSection,
                label,
                thread: u32::MAX,
            }
        } else {
            prophet_obs::EventKind::SpanEnd {
                kind: prophet_obs::SpanKind::EmuSection,
                label,
                thread: u32::MAX,
            }
        };
        h.record(t, kind);
    }
}

/// A CPU's cursor through its assigned tasks inside one section.
struct CpuRun {
    cpu: usize,
    rank: u32,
    time: u64,
    /// Remaining tasks of the current chunk.
    pending: VecDeque<NodeId>,
    /// Ops of the in-flight task.
    ops: VecDeque<NodeId>,
    done: bool,
    executed_any: bool,
}

/// Predict the speedup of `tree` under `opts`.
///
/// Flattens the tree into a [`FlatTree`] arena and emulates over the
/// contiguous buffer; use [`predict_flat`] to amortise the conversion
/// across predictions, or [`predict_ptr`] to force the pointer-tree
/// walk (bit-identical, slower).
pub fn predict(tree: &ProgramTree, opts: FfOptions) -> FfPrediction {
    predict_counting(tree, opts).0
}

/// [`predict`], additionally returning the run-aware fast-path counters
/// (`ff.runs_fastpathed` / `ff.iters_skipped`).
pub fn predict_counting(tree: &ProgramTree, opts: FfOptions) -> (FfPrediction, FfCounters) {
    let flat = FlatTree::from_tree(tree);
    predict_counting_flat(&flat, opts)
}

/// Predict directly over a pre-built [`FlatTree`] arena.
pub fn predict_flat(flat: &FlatTree, opts: FfOptions) -> FfPrediction {
    predict_counting_flat(flat, opts).0
}

/// [`predict_flat`], additionally returning the fast-path counters.
pub fn predict_counting_flat(flat: &FlatTree, opts: FfOptions) -> (FfPrediction, FfCounters) {
    run_on(flat, opts)
}

/// Predict over the pointer tree without flattening — the baseline leg
/// of the arena-vs-pointer benchmark and equivalence tests.
pub fn predict_ptr(tree: &ProgramTree, opts: FfOptions) -> FfPrediction {
    run_on(tree, opts).0
}

fn run_on<'t, V: TreeView<'t>>(view: V, opts: FfOptions) -> (FfPrediction, FfCounters) {
    let mut st = FfState::new(view, opts);
    let p = predict_run(&mut st);
    (p, st.counters)
}

/// Publish FF fast-path counters into a metrics registry under the
/// `ff.*` names.
#[cfg(feature = "obs")]
pub fn publish_counters(c: &FfCounters, reg: &mut prophet_obs::MetricsRegistry) {
    reg.inc("ff.runs_fastpathed", c.runs_fastpathed);
    reg.inc("ff.iters_skipped", c.iters_skipped);
}

/// [`predict`], recording heap pops, chunk dispatches, emulated lock
/// events and section spans on `obs` with emulated-time timestamps.
#[cfg(feature = "obs")]
pub fn predict_with_obs(
    tree: &ProgramTree,
    opts: FfOptions,
    obs: prophet_obs::ObsHandle,
) -> FfPrediction {
    let flat = FlatTree::from_tree(tree);
    let mut st = FfState::new(&flat, opts);
    st.obs = Some(obs);
    predict_run(&mut st)
}

fn predict_run<'t, V: TreeView<'t>>(st: &mut FfState<'t, V>) -> FfPrediction {
    let view = st.view;
    let opts = st.opts;
    let serial_cycles = view.total_length();
    let mut now = 0u64;
    let mut sections = Vec::new();
    for child in view.expanded(view.root()) {
        match view.kind(child) {
            ViewKind::U => {
                now += view.length(child);
            }
            ViewKind::Sec { burden, .. } => {
                let factor = if opts.use_burden {
                    burden_factor(burden, opts.cpus)
                } else {
                    1.0
                };
                // Top-level sections start with every CPU synchronised.
                for t in st.cpu_time.iter_mut() {
                    *t = now;
                }
                #[cfg(feature = "obs")]
                obs_section_span(st, true, sections.len(), now);
                let end = emulate_section(st, child, 0, now, factor);
                #[cfg(feature = "obs")]
                obs_section_span(st, false, sections.len(), end);
                sections.push((view.length(child), end - now));
                now = end;
            }
            ViewKind::Pipe { burden, .. } => {
                let factor = if opts.use_burden {
                    burden_factor(burden, opts.cpus)
                } else {
                    1.0
                };
                for t in st.cpu_time.iter_mut() {
                    *t = now;
                }
                #[cfg(feature = "obs")]
                obs_section_span(st, true, sections.len(), now);
                let end = if opts.model_pipelines {
                    emulate_pipe(st, child, now, factor)
                } else {
                    // Tool without pipeline support: serial execution.
                    now + scale(view.length(child), factor)
                };
                #[cfg(feature = "obs")]
                obs_section_span(st, false, sections.len(), end);
                sections.push((view.length(child), end - now));
                now = end;
            }
            other => unreachable!("invalid top-level node {}", other.tag()),
        }
    }
    let predicted_cycles = now.max(1);
    FfPrediction {
        predicted_cycles,
        serial_cycles,
        speedup: serial_cycles as f64 / predicted_cycles as f64,
        sections,
    }
}

/// Run-aware closed-form emulation of one section, or `None` when a
/// steadiness precondition fails and the exact per-iteration path must
/// run instead (DESIGN.md §12).
///
/// Preconditions: static/static,c schedule (per-rank chunk sequences are
/// fixed, independent of arrival order) and pure-`U` task bodies (locks
/// couple ranks through the shared per-lock clock; nested sections book
/// time on other CPUs). Under them every rank's final clock is
/// `start + dispatches·dispatch_ovh + Σ_assigned (iter_start + body)`,
/// a sum of the identical u64 terms the heap path accumulates one pop at
/// a time — so the result is bit-identical, computed in O(ranks × runs).
fn fastpath_section<'t, V: TreeView<'t>>(
    st: &mut FfState<'t, V>,
    sec: NodeId,
    host: usize,
    start: u64,
    burden: f64,
) -> Option<u64> {
    if st.opts.expand_runs {
        return None;
    }
    // The fast path emits no per-iteration events (EmuHeapPop,
    // ChunkDispatch): with a recorder attached, keep the full trace.
    #[cfg(feature = "obs")]
    if st.obs.is_some() {
        return None;
    }
    let chunk = match st.opts.schedule {
        Schedule::Static { chunk } => chunk,
        _ => return None,
    };
    let view = st.view;
    let opts = st.opts;

    // Steadiness check + per-run cost table. `cost` is one iteration of
    // the run's representative task: iter_start + its scaled U ops. Both
    // the table and the memo are recycled across activations: the table
    // through a pool, the memo through a dense stamped array (a fresh
    // stamp invalidates every entry at once).
    let nc = view.node_count();
    if st.cost_stamp.len() < nc {
        st.cost_stamp.resize(nc, 0);
        st.cost_val.resize(nc, None);
    }
    st.stamp += 1;
    let stamp = st.stamp;
    let mut run_costs = st.run_cost_pool.pop().unwrap_or_default();
    run_costs.clear();
    let mut n_total = 0u64;
    let mut steady = true;
    for (task, count) in view.child_runs(sec) {
        let ti = task as usize;
        if st.cost_stamp[ti] != stamp {
            let mut c = Some(opts.overheads.iter_start);
            for (op, k) in view.child_runs(task) {
                match view.kind(op) {
                    ViewKind::U => {
                        if let Some(c) = c.as_mut() {
                            *c += k as u64 * scale(view.length(op), burden);
                        }
                    }
                    _ => {
                        c = None;
                        break;
                    }
                }
            }
            st.cost_stamp[ti] = stamp;
            st.cost_val[ti] = c;
        }
        let Some(cost) = st.cost_val[ti] else {
            steady = false;
            break;
        };
        run_costs.push(RunCost {
            lo: n_total,
            hi: n_total + count as u64,
            cost,
        });
        n_total += count as u64;
    }
    if !steady {
        st.run_cost_pool.push(run_costs);
        return None;
    }
    if n_total == 0 {
        st.run_cost_pool.push(run_costs);
        return Some(start + opts.overheads.parallel_start + opts.overheads.parallel_end);
    }

    let nranks = st.cpu_time.len();
    let team = nranks as u64;
    let body_start = start + opts.overheads.parallel_start;
    let dispatch_ovh = opts.overheads.dispatch_for(&opts.schedule);
    let mut section_end = body_start;
    for r in 0..nranks {
        let cpu = (host + r) % nranks;
        let r64 = r as u64;
        // (assigned iters, chunk dispatches, Σ per-iteration costs) for
        // rank r, mirroring the Dispenser's exact chunk arithmetic.
        let (assigned, dispatches, body_cost) = match chunk {
            None => {
                // static: one contiguous block, first n%team ranks one
                // extra; empty blocks pay no dispatch.
                let base = n_total / team;
                let rem = n_total % team;
                let lo = r64 * base + r64.min(rem);
                let size = base + u64::from(r64 < rem);
                let mut cost = 0u64;
                for rc in &run_costs {
                    let a = rc.lo.max(lo);
                    let b = rc.hi.min(lo + size);
                    if b > a {
                        cost += (b - a) * rc.cost;
                    }
                }
                (size, u64::from(size > 0), cost)
            }
            Some(c) => {
                // static,c: chunks [r·c + j·team·c, +c) ∩ [0, n). The
                // assignment is periodic with period team·c, so the count
                // of rank-r iterations below x is closed-form.
                let c = (c as u64).max(1);
                let period = c * team;
                if r64 * c >= n_total {
                    (0, 0, 0)
                } else {
                    let dispatches = (n_total - r64 * c).div_ceil(period);
                    let f = |x: u64| (x / period) * c + (x % period).saturating_sub(r64 * c).min(c);
                    let mut assigned = 0u64;
                    let mut cost = 0u64;
                    for rc in &run_costs {
                        let k = f(rc.hi) - f(rc.lo);
                        assigned += k;
                        cost += k * rc.cost;
                    }
                    (assigned, dispatches, cost)
                }
            }
        };
        if assigned > 0 {
            let end = body_start.max(st.cpu_time[cpu]) + dispatches * dispatch_ovh + body_cost;
            section_end = section_end.max(end);
            st.cpu_time[cpu] = st.cpu_time[cpu].max(end);
        }
    }
    st.counters.runs_fastpathed += run_costs.len() as u64;
    st.counters.iters_skipped += n_total - run_costs.len() as u64;
    st.run_cost_pool.push(run_costs);
    Some(section_end + opts.overheads.parallel_end)
}

/// Emulate one section hosted by `host`, starting at `start`. Returns the
/// section end time (after the implicit barrier and join overhead).
fn emulate_section<'t, V: TreeView<'t>>(
    st: &mut FfState<'t, V>,
    sec: NodeId,
    host: usize,
    start: u64,
    burden: f64,
) -> u64 {
    if let Some(end) = fastpath_section(st, sec, host, start, burden) {
        return end;
    }
    let view = st.view;
    let n = st.cpu_time.len();
    let mut tasks = st.task_buf_pool.pop().unwrap_or_default();
    tasks.clear();
    tasks.extend(view.expanded(sec));
    if tasks.is_empty() {
        st.task_buf_pool.push(tasks);
        return start + st.opts.overheads.parallel_start + st.opts.overheads.parallel_end;
    }
    let body_start = start + st.opts.overheads.parallel_start;
    let mut dispenser = Dispenser::new(st.opts.schedule, tasks.len(), n as u32);

    // Rank r runs on CPU (host + r) mod n: nested sections start their
    // round-robin at the host CPU (the Fig. 7 behaviour).
    let mut runs: Vec<CpuRun> = (0..n)
        .map(|r| {
            let cpu = (host + r) % n;
            CpuRun {
                cpu,
                rank: r as u32,
                time: body_start.max(st.cpu_time[cpu]),
                pending: VecDeque::new(),
                ops: VecDeque::new(),
                done: false,
                executed_any: false,
            }
        })
        .collect();

    // Priority heap serialising the competing CPUs (paper §IV-C).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..n).map(|i| Reverse((runs[i].time, i))).collect();

    let mut section_end = body_start;
    while let Some(Reverse((t, i))) = heap.pop() {
        if runs[i].done || t < runs[i].time {
            // Stale entry (time advanced since push).
            if !runs[i].done && t < runs[i].time {
                heap.push(Reverse((runs[i].time, i)));
            }
            continue;
        }
        obs_at!(
            st,
            t,
            EmuHeapPop {
                cpu: runs[i].cpu as u32
            }
        );
        // Need a task op to execute?
        if runs[i].ops.is_empty() {
            if runs[i].pending.is_empty() {
                match dispenser.next_chunk(runs[i].rank) {
                    Some((s, e)) => {
                        runs[i].time += st.opts.overheads.dispatch_for(&st.opts.schedule);
                        obs_at!(
                            st,
                            runs[i].time,
                            ChunkDispatch {
                                worker: runs[i].rank,
                                lo: s as u32,
                                hi: e as u32
                            }
                        );
                        for t in &tasks[s..e] {
                            runs[i].pending.push_back(*t);
                        }
                    }
                    None => {
                        runs[i].done = true;
                        if runs[i].executed_any {
                            section_end = section_end.max(runs[i].time);
                            st.cpu_time[runs[i].cpu] = st.cpu_time[runs[i].cpu].max(runs[i].time);
                        }
                        continue;
                    }
                }
            }
            if let Some(task) = runs[i].pending.pop_front() {
                runs[i].time += st.opts.overheads.iter_start;
                runs[i].executed_any = true;
                // Refill the run's op queue in place: the buffer persists
                // across the section's tasks, so steady state allocates
                // nothing per task.
                runs[i].ops.clear();
                runs[i].ops.extend(view.expanded(task));
            }
            heap.push(Reverse((runs[i].time, i)));
            continue;
        }

        // Execute exactly one op, then requeue.
        let op = runs[i].ops.pop_front().expect("checked non-empty");
        match view.kind(op) {
            ViewKind::U => {
                runs[i].time += scale(view.length(op), burden);
            }
            ViewKind::L { lock } => {
                let free = st.lock_free.get(&lock).copied().unwrap_or(0);
                let contended = free > runs[i].time;
                let mut acquired = runs[i].time.max(free) + st.opts.overheads.lock_acquire;
                if contended {
                    acquired += st.opts.contended_lock_penalty;
                    obs_at!(
                        st,
                        runs[i].time,
                        LockWait {
                            lock,
                            thread: runs[i].cpu as u32
                        }
                    );
                }
                let released =
                    acquired + scale(view.length(op), burden) + st.opts.overheads.lock_release;
                obs_at!(
                    st,
                    acquired,
                    LockAcquire {
                        lock,
                        thread: runs[i].cpu as u32
                    }
                );
                obs_at!(
                    st,
                    released,
                    LockRelease {
                        lock,
                        thread: runs[i].cpu as u32
                    }
                );
                st.lock_free.insert(lock, released);
                runs[i].time = released;
            }
            ViewKind::Sec { .. } => {
                // Nested: recurse with this CPU as host. Nested sections
                // inherit the top-level burden factor.
                let cpu = runs[i].cpu;
                st.cpu_time[cpu] = runs[i].time;
                let end = emulate_section(st, op, cpu, runs[i].time, burden);
                runs[i].time = end;
            }
            other => unreachable!("invalid op node {}", other.tag()),
        }
        heap.push(Reverse((runs[i].time, i)));
    }

    st.task_buf_pool.push(tasks);
    section_end + st.opts.overheads.parallel_end
}

/// Emulate a pipeline region (§VII-E extension): items stream through
/// stage threads; stage `s` of item `i` starts after stage `s-1` of item
/// `i` (the hand-off) and after stage `s` of item `i-1` (stages are
/// stateful, one item at a time). The recurrence yields the
/// dependency-limited makespan with one thread per stage; when the
/// machine has fewer CPUs than stages the OS time-slices the stage
/// threads, so the emulated end is additionally lower-bounded by
/// `work / cpus` (the resource limit).
fn emulate_pipe<'t, V: TreeView<'t>>(
    st: &mut FfState<'t, V>,
    pipe: NodeId,
    start: u64,
    burden: f64,
) -> u64 {
    use std::collections::HashMap as Map;
    let view = st.view;
    let n = st.cpu_time.len() as u64;
    let body_start = start + st.opts.overheads.parallel_start;
    let mut stage_clock: Map<u32, u64> = Map::new();
    let mut end = body_start;
    let mut total_work: u64 = 0;
    for item in view.expanded(pipe) {
        let mut prev_stage_end = body_start;
        for stage in view.expanded(item) {
            let s = match view.kind(stage) {
                ViewKind::Stage { stage } => stage,
                other => unreachable!("invalid node under pipe item: {}", other.tag()),
            };
            let clock = stage_clock.entry(s).or_insert(body_start);
            let mut t = prev_stage_end.max(*clock) + st.opts.overheads.iter_start;
            for op in view.expanded(stage) {
                match view.kind(op) {
                    ViewKind::U => {
                        let len = scale(view.length(op), burden);
                        total_work += len;
                        t += len;
                    }
                    ViewKind::L { lock } => {
                        let free = st.lock_free.get(&lock).copied().unwrap_or(0);
                        let contended = free > t;
                        let mut acquired = t.max(free) + st.opts.overheads.lock_acquire;
                        if contended {
                            acquired += st.opts.contended_lock_penalty;
                        }
                        let len = scale(view.length(op), burden);
                        total_work += len;
                        let released = acquired + len + st.opts.overheads.lock_release;
                        st.lock_free.insert(lock, released);
                        t = released;
                    }
                    other => unreachable!("invalid node under stage: {}", other.tag()),
                }
            }
            *stage_clock.get_mut(&s).expect("inserted above") = t;
            prev_stage_end = t;
        }
        end = end.max(prev_stage_end);
    }
    // Resource limit: with fewer CPUs than busy stages the makespan
    // cannot beat work/cpus.
    let end = end.max(body_start + total_work.div_ceil(n.max(1)));
    for t in st.cpu_time.iter_mut() {
        *t = (*t).max(end);
    }
    end + st.opts.overheads.parallel_end
}

fn scale(len: Cycles, burden: f64) -> u64 {
    if (burden - 1.0).abs() < 1e-12 {
        len
    } else {
        (len as f64 * burden).round() as u64
    }
}

/// Sweep CPU counts and return `(cpus, speedup)` pairs — the FF's
/// signature ability to predict for arbitrary processor counts. The
/// tree is flattened once for the whole sweep.
pub fn speedup_curve(tree: &ProgramTree, base: FfOptions, cpu_counts: &[u32]) -> Vec<(u32, f64)> {
    let flat = FlatTree::from_tree(tree);
    cpu_counts
        .iter()
        .map(|&c| {
            let mut o = base;
            o.cpus = c;
            (c, predict_flat(&flat, o).speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TreeBuilder;

    fn zero_opts(cpus: u32, schedule: Schedule) -> FfOptions {
        FfOptions {
            cpus,
            schedule,
            overheads: OmpOverheads::zero(),
            use_burden: true,
            contended_lock_penalty: 0,
            model_pipelines: true,
            expand_runs: false,
        }
    }

    /// Build a single-section loop with the given per-iteration
    /// (pre, lock, post) cycle triples.
    fn lock_loop(iters: &[(u64, u64, u64)]) -> ProgramTree {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for &(pre, lock, post) in iters {
            b.begin_task("t").unwrap();
            if pre > 0 {
                b.add_compute(pre).unwrap();
            }
            if lock > 0 {
                b.begin_lock(1).unwrap();
                b.add_compute(lock).unwrap();
                b.end_lock(1).unwrap();
            }
            if post > 0 {
                b.add_compute(post).unwrap();
            }
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fig5_all_three_schedules() {
        // Paper Fig. 5: I0 = 150/(L)450/50, I1 = 100/(L)300/200,
        // I2 = 150/(L)50/50; dual core; serial total 1500.
        let tree = lock_loop(&[(150, 450, 50), (100, 300, 200), (150, 50, 50)]);
        assert_eq!(tree.total_length(), 1500);

        // Case 1 (static,1): 1150 → speedup 1.30.
        let p = predict(&tree, zero_opts(2, Schedule::static1()));
        assert_eq!(p.predicted_cycles, 1150, "static-1");
        assert!((p.speedup - 1.304).abs() < 0.01);

        // Case 2 (static): 1250 → speedup 1.20.
        let p = predict(&tree, zero_opts(2, Schedule::static_block()));
        assert_eq!(p.predicted_cycles, 1250, "static");
        assert!((p.speedup - 1.20).abs() < 0.01);

        // Case 3 (dynamic,1): 950 → speedup 1.58.
        let p = predict(&tree, zero_opts(2, Schedule::dynamic1()));
        assert_eq!(p.predicted_cycles, 950, "dynamic-1");
        assert!((p.speedup - 1.579).abs() < 0.01);
    }

    #[test]
    fn fig7_nested_underprediction() {
        // Two-level nested loop of Fig. 7: outer (static,1) with two
        // tasks, each an inner section with tasks (10,5) and (5,10).
        // The FF's round-robin nested model books 10+10 on CPU0 → 20,
        // predicting 1.5 where the true speedup is 2.0.
        let mut b = TreeBuilder::new();
        b.begin_sec("outer").unwrap();
        for lens in [[10u64, 5], [5, 10]] {
            b.begin_task("ot").unwrap();
            b.begin_sec("inner").unwrap();
            for l in lens {
                b.begin_task("it").unwrap();
                b.add_compute(l).unwrap();
                b.end_task().unwrap();
            }
            b.end_sec(false).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        assert_eq!(tree.total_length(), 30);
        let p = predict(&tree, zero_opts(2, Schedule::static1()));
        assert_eq!(p.predicted_cycles, 20);
        assert!((p.speedup - 1.5).abs() < 1e-9);
    }

    #[test]
    fn balanced_loop_perfect_speedup() {
        let tree = lock_loop(&[(1000, 0, 0); 8]);
        for cpus in [1u32, 2, 4, 8] {
            let p = predict(&tree, zero_opts(cpus, Schedule::static1()));
            assert_eq!(p.predicted_cycles, 8000 / cpus as u64, "cpus={cpus}");
        }
    }

    #[test]
    fn serial_sections_stay_serial() {
        let mut b = TreeBuilder::new();
        b.add_compute(500).unwrap();
        b.begin_sec("s").unwrap();
        for _ in 0..4 {
            b.begin_task("t").unwrap();
            b.add_compute(1000).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.add_compute(300).unwrap();
        let tree = b.finish().unwrap();
        let p = predict(&tree, zero_opts(4, Schedule::static1()));
        assert_eq!(p.predicted_cycles, 500 + 1000 + 300);
        assert_eq!(p.sections, vec![(4000, 1000)]);
    }

    #[test]
    fn fully_serialized_lock_bound_loop() {
        // Entirely locked iterations: no speedup regardless of CPUs.
        let tree = lock_loop(&[(0, 1000, 0); 6]);
        let p = predict(&tree, zero_opts(6, Schedule::static1()));
        assert_eq!(p.predicted_cycles, 6000);
        assert!((p.speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn burden_factor_slows_section() {
        let mut b = TreeBuilder::new();
        b.begin_sec("mem").unwrap();
        for _ in 0..4 {
            b.begin_task("t").unwrap();
            b.add_compute(1000).unwrap();
            b.end_task().unwrap();
        }
        let sec = b.end_sec(false).unwrap();
        let mut tree = b.finish().unwrap();
        if let proftree::NodeKind::Sec { burden, .. } = &mut tree.node_mut(sec).kind {
            *burden = proftree::BurdenTable::from_entries(vec![(4, 1.5)]);
        }
        let with = predict(&tree, zero_opts(4, Schedule::static1()));
        let mut opts = zero_opts(4, Schedule::static1());
        opts.use_burden = false;
        let without = predict(&tree, opts);
        assert_eq!(without.predicted_cycles, 1000);
        assert_eq!(with.predicted_cycles, 1500);
        // Speedup ratio = 1/β.
        assert!((with.speedup - 4.0 / 1.5).abs() < 1e-6);
    }

    #[test]
    fn overheads_lower_speedup_for_fine_grained_loops() {
        let tree = lock_loop(&[(100, 0, 0); 64]);
        let cheap = predict(&tree, zero_opts(4, Schedule::dynamic1()));
        let mut opts = zero_opts(4, Schedule::dynamic1());
        opts.overheads.dynamic_dispatch = 50;
        opts.overheads.iter_start = 25;
        let dear = predict(&tree, opts);
        assert!(dear.predicted_cycles > cheap.predicted_cycles);
        assert!(dear.speedup < cheap.speedup);
    }

    #[test]
    fn dynamic_beats_static_on_triangular_workload() {
        let iters: Vec<(u64, u64, u64)> = (1..=32).map(|i| (i * 100, 0, 0)).collect();
        let tree = lock_loop(&iters);
        let st = predict(&tree, zero_opts(4, Schedule::static_block()));
        let dy = predict(&tree, zero_opts(4, Schedule::dynamic1()));
        assert!(dy.predicted_cycles < st.predicted_cycles);
    }

    #[test]
    fn speedup_curve_monotone_for_balanced_work() {
        let tree = lock_loop(&[(5000, 0, 0); 48]);
        let curve = speedup_curve(
            &tree,
            zero_opts(1, Schedule::static1()),
            &[1, 2, 4, 6, 8, 12],
        );
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "curve not monotone: {curve:?}");
        }
        assert!((curve.last().unwrap().1 - 12.0).abs() < 0.01);
    }

    #[test]
    fn speedup_never_exceeds_cpus_without_superlinearity() {
        let iters: Vec<(u64, u64, u64)> = (0..40)
            .map(|i| (100 + (i * 97) % 900, (i % 3) * 50, 50))
            .collect();
        let tree = lock_loop(&iters);
        for cpus in [2u32, 4, 8] {
            for sched in [
                Schedule::static1(),
                Schedule::static_block(),
                Schedule::dynamic1(),
            ] {
                let p = predict(&tree, zero_opts(cpus, sched));
                assert!(p.speedup <= cpus as f64 + 1e-9);
                assert!(p.speedup >= 1.0 - 1e-9);
            }
        }
    }

    #[test]
    fn empty_tree_prediction() {
        let tree = TreeBuilder::new().finish().unwrap();
        let p = predict(&tree, zero_opts(4, Schedule::static1()));
        assert_eq!(p.serial_cycles, 0);
        assert!(p.sections.is_empty());
    }

    #[test]
    fn compressed_tree_predicts_like_uncompressed() {
        let iters: Vec<(u64, u64, u64)> = (0..200).map(|_| (750, 0, 0)).collect();
        let tree = lock_loop(&iters);
        let (ctree, _) = proftree::compress_tree(&tree, proftree::CompressOptions::default());
        let a = predict(&tree, zero_opts(6, Schedule::static1()));
        let b = predict(&ctree, zero_opts(6, Schedule::static1()));
        assert_eq!(a.predicted_cycles, b.predicted_cycles);
    }

    #[test]
    fn flat_and_pointer_walks_agree_bit_for_bit() {
        let iters: Vec<(u64, u64, u64)> = (0..57)
            .map(|i| (100 + (i * 131) % 700, (i % 4) * 40, 30))
            .collect();
        let tree = lock_loop(&iters);
        let (ctree, _) = proftree::compress_tree(&tree, proftree::CompressOptions::default());
        for t in [&tree, &ctree] {
            let flat = FlatTree::from_tree(t);
            for cpus in [1u32, 3, 8] {
                for sched in [
                    Schedule::static_block(),
                    Schedule::static1(),
                    Schedule::dynamic1(),
                ] {
                    let a = predict_ptr(t, zero_opts(cpus, sched));
                    let b = predict_flat(&flat, zero_opts(cpus, sched));
                    assert_eq!(a.predicted_cycles, b.predicted_cycles);
                    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
                    assert_eq!(a.sections, b.sections);
                }
            }
        }
    }

    #[test]
    fn fastpath_matches_expanded_on_static_schedules() {
        // Imbalanced iterations + a remainder that doesn't divide the
        // team, to exercise remainder chunks in the closed forms.
        let iters: Vec<(u64, u64, u64)> = (0..37).map(|i| (100 + (i % 5) * 333, 0, 0)).collect();
        let tree = lock_loop(&iters);
        let (ctree, _) = proftree::compress_tree(&tree, proftree::CompressOptions::default());
        for t in [&tree, &ctree] {
            for cpus in [1u32, 2, 3, 4, 8, 12] {
                for sched in [
                    Schedule::static_block(),
                    Schedule::static1(),
                    Schedule::Static { chunk: Some(3) },
                    Schedule::Static { chunk: Some(64) },
                ] {
                    let mut fast = zero_opts(cpus, sched);
                    fast.overheads.iter_start = 7;
                    fast.overheads.static_dispatch = 13;
                    let mut slow = fast;
                    slow.expand_runs = true;
                    let a = predict(t, fast);
                    let b = predict(t, slow);
                    assert_eq!(
                        a.predicted_cycles, b.predicted_cycles,
                        "cpus={cpus} sched={sched:?}"
                    );
                    assert_eq!(a.sections, b.sections);
                }
            }
        }
    }

    #[test]
    fn fastpath_counters_track_compressed_runs() {
        let iters: Vec<(u64, u64, u64)> = (0..500).map(|_| (750, 0, 0)).collect();
        let tree = lock_loop(&iters);
        let (ctree, _) = proftree::compress_tree(&tree, proftree::CompressOptions::default());
        let (_, c) = predict_counting(&ctree, zero_opts(4, Schedule::static1()));
        assert!(c.runs_fastpathed >= 1);
        // 500 logical iterations compress into few runs; nearly all are
        // skipped by the closed form.
        assert!(c.iters_skipped > 450, "iters_skipped {}", c.iters_skipped);
        // The forced-expansion path reports zero fast-path activity.
        let mut o = zero_opts(4, Schedule::static1());
        o.expand_runs = true;
        let (_, c) = predict_counting(&ctree, o);
        assert_eq!(c, FfCounters::default());
        // Dynamic scheduling cannot fast-path.
        let (_, c) = predict_counting(&ctree, zero_opts(4, Schedule::dynamic1()));
        assert_eq!(c, FfCounters::default());
    }

    #[test]
    fn locked_sections_fall_back_to_exact_path() {
        let tree = lock_loop(&[(150, 450, 50), (100, 300, 200), (150, 50, 50)]);
        let (p, c) = predict_counting(&tree, zero_opts(2, Schedule::static1()));
        assert_eq!(p.predicted_cycles, 1150);
        assert_eq!(c, FfCounters::default());
    }
}
