//! Property tests for the fast-forwarding emulator: predictions must
//! respect fundamental bounds for any program tree.

use proptest::prelude::*;

use ffemu::{predict, FfOptions};
use machsim::Schedule;
use omp_rt::OmpOverheads;
use proftree::stats::WorkSummary;
use proftree::{ProgramTree, TreeBuilder};

#[derive(Debug, Clone)]
struct LoopSpec {
    lens: Vec<u32>,
    lock_every: u8,
    lock_len: u32,
}

fn loop_strategy() -> impl Strategy<Value = LoopSpec> {
    (
        proptest::collection::vec(1u32..100_000, 1..40),
        0u8..4,
        1u32..20_000,
    )
        .prop_map(|(lens, lock_every, lock_len)| LoopSpec {
            lens,
            lock_every,
            lock_len,
        })
}

fn build(specs: &[LoopSpec], serial: u32) -> ProgramTree {
    let mut b = TreeBuilder::new();
    b.add_compute(serial as u64).unwrap();
    for (si, spec) in specs.iter().enumerate() {
        b.begin_sec(&format!("s{si}")).unwrap();
        for (i, &len) in spec.lens.iter().enumerate() {
            b.begin_task("t").unwrap();
            b.add_compute(len as u64).unwrap();
            if spec.lock_every > 0 && i % spec.lock_every as usize == 0 {
                b.begin_lock(1).unwrap();
                b.add_compute(spec.lock_len as u64).unwrap();
                b.end_lock(1).unwrap();
            }
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
    }
    b.finish().unwrap()
}

fn zero_opts(cpus: u32, schedule: Schedule) -> FfOptions {
    FfOptions {
        cpus,
        schedule,
        overheads: OmpOverheads::zero(),
        use_burden: false,
        contended_lock_penalty: 0,
        model_pipelines: true,
        expand_runs: false,
    }
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop_oneof![
        Just(Schedule::static_block()),
        (1u32..5).prop_map(|c| Schedule::Static { chunk: Some(c) }),
        (1u32..5).prop_map(|c| Schedule::Dynamic { chunk: c }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Predicted time lies in [span lower bound, serial time]; speedup in
    /// [1, cpus] — for any tree and schedule, with zero overheads.
    #[test]
    fn prediction_within_fundamental_bounds(
        specs in proptest::collection::vec(loop_strategy(), 1..4),
        serial in 0u32..100_000,
        cpus in 1u32..16,
        schedule in schedule_strategy(),
    ) {
        let tree = build(&specs, serial);
        let w = WorkSummary::gather(&tree);
        let p = predict(&tree, zero_opts(cpus, schedule));
        prop_assert!(p.predicted_cycles <= w.total.max(1), "beyond serial");
        // Brent-style lower bound per top-level structure.
        let lower = (w.total as f64 / cpus as f64).max(w.serial_work as f64);
        prop_assert!(
            p.predicted_cycles as f64 >= lower - 1.0,
            "below work/cpu bound: {} < {lower}",
            p.predicted_cycles
        );
        prop_assert!(p.speedup >= 1.0 - 1e-9);
        prop_assert!(p.speedup <= cpus as f64 + 1e-9);
    }

    /// Lock-serialised work is respected: predicted time ≥ total work
    /// under any single lock.
    #[test]
    fn lock_chain_lower_bound(
        specs in proptest::collection::vec(loop_strategy(), 1..3),
        cpus in 2u32..12,
    ) {
        let tree = build(&specs, 0);
        let w = WorkSummary::gather(&tree);
        let lock_work = w.lock_work.get(&1).copied().unwrap_or(0);
        let p = predict(&tree, zero_opts(cpus, Schedule::dynamic1()));
        prop_assert!(
            p.predicted_cycles >= lock_work,
            "prediction {} under lock chain {lock_work}",
            p.predicted_cycles
        );
    }

    /// Overheads only hurt — under `schedule(static)`, whose block
    /// assignment is invariant, so no Graham scheduling anomaly can turn
    /// extra overhead into a luckier schedule (dynamic and round-robin
    /// schedules CAN get faster when overheads perturb chunk timing —
    /// that is a real multiprocessor phenomenon, not a bug).
    #[test]
    fn overheads_monotone_static_block(
        specs in proptest::collection::vec(loop_strategy(), 1..3),
        cpus in 1u32..13,
    ) {
        let tree = build(&specs, 1_000);
        let cheap = predict(&tree, zero_opts(cpus, Schedule::static_block()));
        let mut opts = zero_opts(cpus, Schedule::static_block());
        opts.overheads = OmpOverheads::westmere_scaled();
        opts.contended_lock_penalty = 2_000;
        let dear = predict(&tree, opts);
        prop_assert!(dear.predicted_cycles >= cheap.predicted_cycles);
    }

    /// Burden factors scale predictions proportionally for
    /// single-section trees with uniform burden.
    #[test]
    fn burden_scales_prediction(
        lens in proptest::collection::vec(1_000u32..50_000, 2..20),
        cpus in 2u32..12,
        burden_milli in 1_000u64..3_000,
    ) {
        let spec = LoopSpec { lens, lock_every: 0, lock_len: 1 };
        let mut tree = build(&[spec], 0);
        let base = predict(&tree, zero_opts(cpus, Schedule::static1())).predicted_cycles;
        let factor = burden_milli as f64 / 1000.0;
        let sec = tree.top_level_sections()[0];
        if let proftree::NodeKind::Sec { burden, .. } = &mut tree.node_mut(sec).kind {
            *burden = proftree::BurdenTable::from_entries(vec![(cpus, factor)]);
        }
        let mut opts = zero_opts(cpus, Schedule::static1());
        opts.use_burden = true;
        let burdened = predict(&tree, opts).predicted_cycles;
        let expect = base as f64 * factor;
        let rel = (burdened as f64 - expect).abs() / expect;
        prop_assert!(rel < 0.01, "burden scaling off by {:.2}%", rel * 100.0);
    }

    /// The emulator is a pure function.
    #[test]
    fn emulation_deterministic(
        specs in proptest::collection::vec(loop_strategy(), 1..3),
        cpus in 1u32..13,
        schedule in schedule_strategy(),
    ) {
        let tree = build(&specs, 123);
        let mut opts = zero_opts(cpus, schedule);
        opts.overheads = OmpOverheads::westmere_scaled();
        let a = predict(&tree, opts);
        let b = predict(&tree, opts);
        prop_assert_eq!(a.predicted_cycles, b.predicted_cycles);
    }
}
