//! End-to-end property: on compute-only trees the synthesizer's
//! prediction must track the machine's ground truth closely — they share
//! the runtime and machine, differing only in FakeDelay substitution and
//! traversal-overhead bookkeeping (paper Table III: "very accurate").

use proptest::prelude::*;

use machsim::{Paradigm, Schedule};
use proftree::{ProgramTree, TreeBuilder};
use synthemu::{predict, SynthOptions};
use workloads::{run_real, RealOptions};

#[derive(Debug, Clone)]
struct LoopSpec {
    lens: Vec<u32>,
    lock_every: u8,
    lock_len: u32,
    nested_every: u8,
    nested_lens: Vec<u32>,
}

fn loop_strategy() -> impl Strategy<Value = LoopSpec> {
    (
        proptest::collection::vec(5_000u32..200_000, 2..24),
        0u8..4,
        1_000u32..20_000,
        0u8..5,
        proptest::collection::vec(2_000u32..30_000, 2..6),
    )
        .prop_map(
            |(lens, lock_every, lock_len, nested_every, nested_lens)| LoopSpec {
                lens,
                lock_every,
                lock_len,
                nested_every,
                nested_lens,
            },
        )
}

fn build(specs: &[LoopSpec], serial: u32) -> ProgramTree {
    let mut b = TreeBuilder::new();
    b.add_compute(serial as u64).unwrap();
    for (si, spec) in specs.iter().enumerate() {
        b.begin_sec(&format!("s{si}")).unwrap();
        for (i, &len) in spec.lens.iter().enumerate() {
            b.begin_task("t").unwrap();
            b.add_compute(len as u64).unwrap();
            if spec.lock_every > 0 && i % spec.lock_every as usize == 0 {
                b.begin_lock(1).unwrap();
                b.add_compute(spec.lock_len as u64).unwrap();
                b.end_lock(1).unwrap();
            }
            if spec.nested_every > 0 && i % spec.nested_every as usize == 1 {
                b.begin_sec("inner").unwrap();
                for &nl in &spec.nested_lens {
                    b.begin_task("nt").unwrap();
                    b.add_compute(nl as u64).unwrap();
                    b.end_task().unwrap();
                }
                b.end_sec(false).unwrap();
            }
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Synthesizer vs ground truth under OpenMP, arbitrary flat/nested
    /// trees, three schedules, 4 and 8 threads: within 12%.
    #[test]
    fn synthesizer_tracks_ground_truth(
        specs in proptest::collection::vec(loop_strategy(), 1..3),
        serial in 0u32..100_000,
        threads_sel in 0usize..2,
        sched_sel in 0usize..3,
    ) {
        let tree = build(&specs, serial);
        let threads = [4u32, 8][threads_sel];
        let schedule = [Schedule::static1(), Schedule::static_block(), Schedule::dynamic1()]
            [sched_sel];

        let real = run_real(
            &tree,
            &RealOptions::new(threads, Paradigm::OpenMp, schedule),
        )
        .expect("ground truth");

        let mut so = SynthOptions::new(threads, Paradigm::OpenMp);
        so.schedule = schedule;
        so.use_burden = false;
        let pred = predict(&tree, &so).expect("synthesizer");

        let rel = (pred.speedup - real.speedup).abs() / real.speedup;
        prop_assert!(
            rel < 0.12,
            "threads={threads} {}: pred {:.2} vs real {:.2} ({:.1}% off)",
            schedule.name(),
            pred.speedup,
            real.speedup,
            rel * 100.0
        );
    }

    /// Under Cilk work stealing the synthesizer stays within 20% — the
    /// paper's own "reasonably precise" boundary ("such a 20% deviation
    /// in speedups is often observed", §VII-B). Work stealing makes the
    /// exact schedule depend on steal timing: the ground-truth run's
    /// workers spin/park through the serial prologue, so their victim
    /// sequences differ from the synthesizer's per-section runs, and on
    /// coarse task sets the resulting schedules legitimately diverge.
    #[test]
    fn synthesizer_tracks_cilk_ground_truth(
        lens in proptest::collection::vec(5_000u32..50_000, 12..40),
        lock_every in 0u8..4,
        threads_sel in 0usize..2,
    ) {
        // Fine-grained loops only: with few, very coarse tasks a single
        // divergent steal decision moves the makespan by more than any
        // reasonable tolerance — an irreducible property of work
        // stealing, not a prediction defect.
        let specs = vec![LoopSpec {
            lens,
            lock_every,
            lock_len: 5_000,
            nested_every: 0,
            nested_lens: vec![2_000],
        }];
        let tree = build(&specs, 10_000);
        let threads = [4u32, 8][threads_sel];

        let real = run_real(
            &tree,
            &RealOptions::new(threads, Paradigm::CilkPlus, Schedule::static_block()),
        )
        .expect("ground truth");
        // Zero the synthesizer's own traversal-overhead modelling here:
        // under work stealing its balanced-subtraction estimate is the
        // paper's documented source of "hard-to-predict" variation
        // (§VII-C on FFT-Cilk), which this property is not about.
        let so = {
            let mut o = SynthOptions::new(threads, Paradigm::CilkPlus);
            o.use_burden = false;
            o.access_node_overhead = 0;
            o.recursive_call_overhead = 0;
            o
        };
        let pred = predict(&tree, &so).expect("synthesizer");
        let rel = (pred.speedup - real.speedup).abs() / real.speedup;
        prop_assert!(
            rel < 0.20,
            "cilk threads={threads}: pred {:.2} vs real {:.2}",
            pred.speedup,
            real.speedup
        );
    }
}
