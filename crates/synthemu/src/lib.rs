#![warn(missing_docs)]

//! The program-synthesis-based emulator (the synthesizer, paper §IV-E).
//!
//! Instead of analytically fast-forwarding clocks, the synthesizer
//! *generates a parallel program* from the program tree — every U/L node
//! becomes a `FakeDelay` busy-spin of the profiled length (scaled by the
//! section's burden factor), every lock a real mutex, every nested section
//! a real nested parallel construct — and measures its actual speedup on a
//! real machine. Here "real machine" is the simulated multicore of
//! `machsim` running the OpenMP-like or Cilk-like runtime, so all the
//! scheduling, oversubscription, preemption, and synchronisation details
//! the FF cannot model are captured automatically (Fig. 8's pseudo-code;
//! the Fig. 7 case is predicted correctly).
//!
//! The paper's one difficulty — the tree-traversing overhead of the
//! generated code — is modelled too: every emitted operation carries
//! `OVERHEAD_ACCESS_NODE` extra cycles and every nested section
//! `OVERHEAD_RECURSIVE_CALL`; after the measurement the synthesizer
//! subtracts its *estimate* of the per-worker overhead (total overhead
//! divided evenly among workers, the balanced assumption). Under workload
//! imbalance the estimate is imperfect — the same residual error the paper
//! reports for recursive benchmarks.
//!
//! Overall speedup follows §IV-E: top-level sections are measured one at a
//! time on a fresh machine, top-level serial computation is added
//! analytically, and `S = T_serial / (Σ emulated + Σ serial)`.
//!
//! Unlike the FF, predictions exist only for thread counts the machine can
//! actually host (Table III: "can only predict performance for a given
//! real machine").

use std::collections::HashMap;
use std::marker::PhantomData;
use std::rc::Rc;

use cilk_rt::{run_program_cilk_on, CilkOverheads};
use machsim::prog::{POp, ParSection, Paradigm, ParallelProgram, Schedule, TaskBody, TaskList};
use machsim::{MachineConfig, RunError, WorkPacket};
use omp_rt::{run_program_on, OmpOverheads};
use proftree::{burden_factor, FlatTree, NodeId, ProgramTree, TreeView, ViewKind};
use serde::{Deserialize, Serialize};

/// Options for one synthesizer prediction.
#[derive(Debug, Clone, Copy)]
pub struct SynthOptions {
    /// The (simulated) real machine to measure on.
    pub machine: MachineConfig,
    /// Worker/team count to emulate (`nworkers` / `num_threads`).
    pub threads: u32,
    /// Threading paradigm of the generated code.
    pub paradigm: Paradigm,
    /// OpenMP schedule (ignored for Cilk).
    pub schedule: Schedule,
    /// OpenMP construct overheads.
    pub omp_overheads: OmpOverheads,
    /// Cilk runtime overheads.
    pub cilk_overheads: CilkOverheads,
    /// OpenMP 3.0 task-pool overheads.
    pub task_overheads: omp_rt::TaskOverheads,
    /// Apply burden factors from the tree.
    pub use_burden: bool,
    /// Synthesizer interpreter cost per visited node (≈ 50 cycles on the
    /// paper's machine).
    pub access_node_overhead: u64,
    /// Synthesizer cost per nested-section recursion.
    pub recursive_call_overhead: u64,
    /// Test-only escape hatch: emit one IR entry per *logical* iteration
    /// instead of run-batched `(body, count)` blocks. The generated
    /// program is identical either way (see `tests/ff_runaware.rs`);
    /// expansion merely restores the O(trip count) emission cost.
    pub expand_runs: bool,
}

impl SynthOptions {
    /// Defaults on the scaled Westmere machine.
    pub fn new(threads: u32, paradigm: Paradigm) -> Self {
        SynthOptions {
            machine: MachineConfig::westmere_scaled(),
            threads,
            paradigm,
            schedule: Schedule::static_block(),
            omp_overheads: OmpOverheads::westmere_scaled(),
            cilk_overheads: CilkOverheads::westmere_scaled(),
            task_overheads: omp_rt::TaskOverheads::westmere_scaled(),
            use_burden: true,
            access_node_overhead: 50,
            recursive_call_overhead: 50,
            expand_runs: false,
        }
    }
}

/// Per-section emulation record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SectionEmul {
    /// Serial length of the section.
    pub serial_cycles: u64,
    /// Gross measured cycles (incl. tree-traversing overhead).
    pub gross_cycles: u64,
    /// Net cycles after overhead subtraction.
    pub net_cycles: u64,
    /// Burden factor applied.
    pub burden: f64,
}

/// The synthesizer's prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SynthPrediction {
    /// Total predicted parallel time.
    pub predicted_cycles: u64,
    /// Serial time from the tree.
    pub serial_cycles: u64,
    /// Predicted speedup.
    pub speedup: f64,
    /// Per top-level section details.
    pub sections: Vec<SectionEmul>,
}

/// IR generation state for one section, generic over the tree view.
struct Gen<'t, V: TreeView<'t>> {
    view: V,
    factor: f64,
    opts: SynthOptions,
    memo: HashMap<NodeId, Rc<TaskBody>>,
    /// Per-task cached [`body_overhead`] so run-batched emission charges
    /// `count × overhead` without re-walking the body per iteration.
    ovh_memo: HashMap<NodeId, u64>,
    /// Total synthesizer-overhead cycles emitted (logical).
    overhead_emitted: u64,
    _tree: PhantomData<&'t ()>,
}

impl<'t, V: TreeView<'t>> Gen<'t, V> {
    fn scale(&self, len: u64) -> u64 {
        if (self.factor - 1.0).abs() < 1e-12 {
            len
        } else {
            (len as f64 * self.factor).round() as u64
        }
    }

    /// Logical overhead embedded in `task`'s already-generated body,
    /// cached per task node.
    fn cached_overhead(&mut self, task: NodeId, body: &Rc<TaskBody>) -> u64 {
        if let Some(&h) = self.ovh_memo.get(&task) {
            return h;
        }
        let h = body_overhead(body, &self.opts);
        self.ovh_memo.insert(task, h);
        h
    }

    fn task_body(&mut self, task: NodeId) -> Rc<TaskBody> {
        if let Some(b) = self.memo.get(&task).cloned() {
            // Shared (compressed) subtree: overhead still accrues per
            // logical execution.
            self.overhead_emitted += self.cached_overhead(task, &b);
            return b;
        }
        let mut ops = Vec::new();
        let view = self.view;
        for child in view.expanded(task) {
            match view.kind(child) {
                ViewKind::U => {
                    self.overhead_emitted += self.opts.access_node_overhead;
                    ops.push(POp::Work(WorkPacket::cpu(
                        self.scale(view.length(child)) + self.opts.access_node_overhead,
                    )));
                }
                ViewKind::L { lock } => {
                    self.overhead_emitted += self.opts.access_node_overhead;
                    if self.opts.access_node_overhead > 0 {
                        ops.push(POp::Work(WorkPacket::cpu(self.opts.access_node_overhead)));
                    }
                    ops.push(POp::Locked {
                        lock,
                        work: WorkPacket::cpu(self.scale(view.length(child))),
                    });
                }
                ViewKind::Sec { .. } => {
                    self.overhead_emitted += self.opts.recursive_call_overhead;
                    if self.opts.recursive_call_overhead > 0 {
                        ops.push(POp::Work(WorkPacket::cpu(
                            self.opts.recursive_call_overhead,
                        )));
                    }
                    ops.push(POp::Par(self.section_ir(child)));
                }
                other => unreachable!("invalid node under task: {}", other.tag()),
            }
        }
        let body = Rc::new(TaskBody { ops });
        self.memo.insert(task, body.clone());
        body
    }

    /// Convert the U/L children of a Stage node into stage ops.
    fn stage_ops(&mut self, stage: NodeId) -> Vec<POp> {
        let mut ops = Vec::new();
        let view = self.view;
        for child in view.expanded(stage) {
            match view.kind(child) {
                ViewKind::U => {
                    self.overhead_emitted += self.opts.access_node_overhead;
                    ops.push(POp::Work(WorkPacket::cpu(
                        self.scale(view.length(child)) + self.opts.access_node_overhead,
                    )));
                }
                ViewKind::L { lock } => {
                    self.overhead_emitted += self.opts.access_node_overhead;
                    if self.opts.access_node_overhead > 0 {
                        ops.push(POp::Work(WorkPacket::cpu(self.opts.access_node_overhead)));
                    }
                    ops.push(POp::Locked {
                        lock,
                        work: WorkPacket::cpu(self.scale(view.length(child))),
                    });
                }
                other => unreachable!("invalid node under stage: {}", other.tag()),
            }
        }
        ops
    }

    /// Convert a Pipe node into a pipeline IR section.
    fn pipe_ir(&mut self, pipe: NodeId) -> machsim::prog::PipeSection {
        let mut items = Vec::new();
        let mut stages = 0u32;
        let view = self.view;
        for item in view.expanded(pipe) {
            let mut stage_ops = Vec::new();
            for st in view.expanded(item) {
                match view.kind(st) {
                    ViewKind::Stage { .. } => stage_ops.push(self.stage_ops(st)),
                    other => unreachable!("invalid node under pipe item: {}", other.tag()),
                }
            }
            stages = stages.max(stage_ops.len() as u32);
            items.push(std::rc::Rc::new(machsim::prog::PipeItem {
                stages: stage_ops,
            }));
        }
        machsim::prog::PipeSection { items, stages }
    }

    fn section_ir(&mut self, sec: NodeId) -> ParSection {
        let view = self.view;
        let nowait = match view.kind(sec) {
            ViewKind::Sec { nowait, .. } => nowait,
            other => unreachable!("expected Sec, got {}", other.tag()),
        };
        let tasks: TaskList = if self.opts.expand_runs {
            view.expanded(sec)
                .map(|t| self.task_body(t))
                .collect::<Vec<_>>()
                .into()
        } else {
            // Run-batched emission: one `(body, count)` entry per RLE run.
            // The first iteration's overhead accrues inside `task_body`
            // (build or memo hit); the remaining `count - 1` iterations
            // charge the cached per-body overhead in one multiply —
            // exactly the sum the expanded path accumulates one memo hit
            // at a time.
            let runs: Vec<(Rc<TaskBody>, u32)> = view
                .child_runs(sec)
                .map(|(t, count)| {
                    let body = self.task_body(t);
                    if count > 1 {
                        let h = self.cached_overhead(t, &body);
                        self.overhead_emitted += (count as u64 - 1) * h;
                    }
                    (body, count)
                })
                .collect();
            TaskList::from_runs(runs)
        };
        ParSection {
            tasks,
            schedule: self.opts.schedule,
            nowait,
            team: Some(self.opts.threads),
        }
    }
}

/// Logical overhead embedded in an already-generated body (for memo hits).
fn body_overhead(body: &TaskBody, opts: &SynthOptions) -> u64 {
    body.ops
        .iter()
        .map(|op| match op {
            POp::Work(_) | POp::Locked { .. } => opts.access_node_overhead,
            POp::Par(sec) => {
                // Per-run multiply instead of per-logical-task walk: the
                // u64 product equals the repeated sum exactly.
                opts.recursive_call_overhead
                    + sec
                        .tasks
                        .runs()
                        .iter()
                        .map(|(t, c)| *c as u64 * body_overhead(t, opts))
                        .sum::<u64>()
            }
            POp::Pipe(pipe) => {
                opts.recursive_call_overhead
                    + pipe
                        .items
                        .iter()
                        .flat_map(|it| it.stages.iter())
                        .flat_map(|ops| ops.iter())
                        .map(|op| match op {
                            POp::Work(_) | POp::Locked { .. } => opts.access_node_overhead,
                            _ => 0,
                        })
                        .sum::<u64>()
            }
        })
        .sum()
}

/// Burden factor of a top-level region under `opts`.
fn region_burden<'t, V: TreeView<'t>>(view: V, sec: NodeId, opts: &SynthOptions) -> f64 {
    match view.kind(sec) {
        ViewKind::Sec { burden, .. } | ViewKind::Pipe { burden, .. } if opts.use_burden => {
            burden_factor(burden, opts.threads)
        }
        _ => 1.0,
    }
}

/// Generate the program the synthesizer would measure for top-level
/// section (or pipeline) `sec`, plus the logical traversal-overhead
/// cycles it embeds. Public so the run-batched and force-expanded
/// emission paths can be compared structurally (`tests/ff_runaware.rs`).
pub fn section_program(
    tree: &ProgramTree,
    sec: NodeId,
    opts: &SynthOptions,
) -> (ParallelProgram, u64) {
    section_program_on(tree, sec, opts)
}

/// [`section_program`] over a pre-built [`FlatTree`] arena; `sec` is a
/// *flat* node id (map pointer-tree ids with [`FlatTree::flat_id`]).
pub fn section_program_flat(
    flat: &FlatTree,
    sec: NodeId,
    opts: &SynthOptions,
) -> (ParallelProgram, u64) {
    section_program_on(flat, sec, opts)
}

fn section_program_on<'t, V: TreeView<'t>>(
    view: V,
    sec: NodeId,
    opts: &SynthOptions,
) -> (ParallelProgram, u64) {
    let burden = region_burden(view, sec, opts);
    let mut gen = Gen {
        view,
        factor: burden,
        opts: *opts,
        memo: HashMap::new(),
        ovh_memo: HashMap::new(),
        overhead_emitted: 0,
        _tree: PhantomData,
    };
    let top_op = match view.kind(sec) {
        ViewKind::Pipe { .. } => POp::Pipe(gen.pipe_ir(sec)),
        _ => POp::Par(gen.section_ir(sec)),
    };
    (ParallelProgram { ops: vec![top_op] }, gen.overhead_emitted)
}

/// Generate the section's IR and measure it on `machine` (fresh or
/// freshly [`machsim::Machine::reset`]).
fn run_section<'t, V: TreeView<'t>>(
    view: V,
    sec: NodeId,
    opts: &SynthOptions,
    machine: &mut machsim::Machine,
) -> Result<SectionEmul, RunError> {
    let (program, overhead_emitted) = section_program_on(view, sec, opts);
    let burden = region_burden(view, sec, opts);

    let is_pipe = matches!(program.ops.first(), Some(POp::Pipe(_)));
    let stats = match opts.paradigm {
        // Pipelines are hosted by the OpenMP-like runtime's stage threads.
        Paradigm::OpenMp => run_program_on(machine, &program, opts.omp_overheads, opts.threads)?,
        Paradigm::CilkPlus | Paradigm::OmpTask if is_pipe => {
            run_program_on(machine, &program, opts.omp_overheads, opts.threads)?
        }
        Paradigm::CilkPlus => {
            run_program_cilk_on(machine, &program, opts.cilk_overheads, opts.threads)?
        }
        Paradigm::OmpTask => {
            omp_rt::run_program_tasks_on(machine, &program, opts.task_overheads, opts.threads)?
        }
    };
    let gross = stats.elapsed_cycles;
    // Subtract the balanced estimate of per-worker traversal overhead
    // (Fig. 8 line 26 takes the longest per-worker count; we estimate it
    // as total/threads — imperfect under imbalance, as the paper notes).
    let est = overhead_emitted / opts.threads.max(1) as u64;
    let net = gross.saturating_sub(est).max(1);
    #[cfg(feature = "obs")]
    if let Some(h) = machine.obs_handle() {
        h.record(
            gross,
            prophet_obs::EventKind::OverheadSubtract { cycles: est },
        );
    }
    Ok(SectionEmul {
        serial_cycles: view.length(sec),
        gross_cycles: gross,
        net_cycles: net,
        burden,
    })
}

/// Predict the speedup of `tree` with the synthesizer.
///
/// One measurement machine is allocated for the whole prediction and
/// [`machsim::Machine::reset`] between top-level sections, so the
/// event-heap/ready-queue allocations are paid once, not per section.
/// Each section still observes a logically fresh machine (clock at 0).
/// The tree is flattened into a [`FlatTree`] arena first; IR generation
/// walks the contiguous run buffer. Use [`predict_flat`] to amortise
/// the conversion, or [`predict_ptr`] for the pointer-tree baseline.
pub fn predict(tree: &ProgramTree, opts: &SynthOptions) -> Result<SynthPrediction, RunError> {
    let flat = FlatTree::from_tree(tree);
    predict_on(&flat, opts)
}

/// [`predict`] directly over a pre-built [`FlatTree`] arena.
pub fn predict_flat(flat: &FlatTree, opts: &SynthOptions) -> Result<SynthPrediction, RunError> {
    predict_on(flat, opts)
}

/// [`predict`] over the pointer tree without flattening — the baseline
/// leg of the arena-vs-pointer benchmark and equivalence tests.
pub fn predict_ptr(tree: &ProgramTree, opts: &SynthOptions) -> Result<SynthPrediction, RunError> {
    predict_on(tree, opts)
}

fn predict_on<'t, V: TreeView<'t>>(
    view: V,
    opts: &SynthOptions,
) -> Result<SynthPrediction, RunError> {
    let mut machine = machsim::Machine::new(opts.machine);
    let mut used = false;
    predict_with(view, opts, move |sec| {
        if used {
            machine.reset();
        }
        used = true;
        run_section(view, sec, opts, &mut machine)
    })
}

/// [`predict`], recording every measurement machine's scheduler events
/// plus the synthesizer's overhead-subtraction corrections on `obs`.
/// The measurement machine's virtual clock restarts at 0 for every
/// top-level section, so timestamps are section-local.
#[cfg(feature = "obs")]
pub fn predict_with_obs(
    tree: &ProgramTree,
    opts: &SynthOptions,
    obs: prophet_obs::ObsHandle,
) -> Result<SynthPrediction, RunError> {
    let flat = FlatTree::from_tree(tree);
    let view = &flat;
    let mut machine = machsim::Machine::new(opts.machine);
    machine.attach_obs(obs);
    let mut used = false;
    predict_with(view, opts, move |sec| {
        if used {
            machine.reset();
        }
        used = true;
        run_section(view, sec, opts, &mut machine)
    })
}

fn predict_with<'t, V: TreeView<'t>>(
    view: V,
    opts: &SynthOptions,
    mut emul: impl FnMut(NodeId) -> Result<SectionEmul, RunError>,
) -> Result<SynthPrediction, RunError> {
    assert!(opts.threads >= 1, "synthesizer needs at least one thread");
    let serial_cycles = view.total_length();
    let serial_top = view.top_level_serial_length();
    let mut sections = Vec::new();
    let mut emulated_total = serial_top;
    for sec in view.top_level_regions() {
        let e = emul(sec)?;
        emulated_total += e.net_cycles;
        sections.push(e);
    }
    let predicted_cycles = emulated_total.max(1);
    Ok(SynthPrediction {
        predicted_cycles,
        serial_cycles,
        speedup: serial_cycles as f64 / predicted_cycles as f64,
        sections,
    })
}

/// Sweep thread counts (capped at the machine's cores, which is all the
/// synthesizer can measure) and return `(threads, speedup)`.
pub fn speedup_curve(
    tree: &ProgramTree,
    base: &SynthOptions,
    thread_counts: &[u32],
) -> Result<Vec<(u32, f64)>, RunError> {
    let flat = FlatTree::from_tree(tree);
    let mut out = Vec::new();
    for &t in thread_counts {
        if t > base.machine.cores {
            continue;
        }
        let mut o = *base;
        o.threads = t;
        out.push((t, predict_flat(&flat, &o)?.speedup));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TreeBuilder;

    fn zero_opts(threads: u32, paradigm: Paradigm, cores: u32) -> SynthOptions {
        let mut o = SynthOptions::new(threads, paradigm);
        o.machine = MachineConfig::small(cores);
        o.omp_overheads = OmpOverheads::zero();
        o.cilk_overheads = CilkOverheads::zero();
        o.access_node_overhead = 0;
        o.recursive_call_overhead = 0;
        o
    }

    fn balanced_loop(n: usize, len: u64) -> ProgramTree {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for _ in 0..n {
            b.begin_task("t").unwrap();
            b.add_compute(len).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn balanced_loop_near_perfect_speedup_openmp() {
        let tree = balanced_loop(16, 10_000);
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let p = predict(&tree, &o).unwrap();
        assert!((p.speedup - 4.0).abs() < 0.05, "speedup {}", p.speedup);
    }

    #[test]
    fn balanced_loop_near_perfect_speedup_cilk() {
        let tree = balanced_loop(64, 10_000);
        let o = zero_opts(4, Paradigm::CilkPlus, 4);
        let p = predict(&tree, &o).unwrap();
        assert!(p.speedup > 3.5, "speedup {}", p.speedup);
    }

    #[test]
    fn fig7_nested_correctly_predicted() {
        // The case the FF gets wrong (1.5): the synthesizer, running on
        // the preemptive machine, should find ~2.0. Scale lengths up so
        // quantum slicing operates.
        let unit = 10_000u64;
        let mut b = TreeBuilder::new();
        b.begin_sec("outer").unwrap();
        for lens in [[10 * unit, 5 * unit], [5 * unit, 10 * unit]] {
            b.begin_task("ot").unwrap();
            b.begin_sec("inner").unwrap();
            for l in lens {
                b.begin_task("it").unwrap();
                b.add_compute(l).unwrap();
                b.end_task().unwrap();
            }
            b.end_sec(false).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();

        let mut o = zero_opts(2, Paradigm::OpenMp, 2);
        o.schedule = Schedule::static1();
        o.machine.quantum_cycles = 5_000;
        let p = predict(&tree, &o).unwrap();
        assert!(
            p.speedup > 1.85,
            "synthesizer should see ~2.0, got {}",
            p.speedup
        );
    }

    #[test]
    fn burden_scales_delays() {
        let mut tree = balanced_loop(8, 10_000);
        let sec = tree.top_level_sections()[0];
        if let proftree::NodeKind::Sec { burden, .. } = &mut tree.node_mut(sec).kind {
            *burden = proftree::BurdenTable::from_entries(vec![(4, 1.5)]);
        }
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let with = predict(&tree, &o).unwrap();
        o.use_burden = false;
        let without = predict(&tree, &o).unwrap();
        let ratio = with.predicted_cycles as f64 / without.predicted_cycles as f64;
        assert!((ratio - 1.5).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn serial_parts_added_analytically() {
        let mut b = TreeBuilder::new();
        b.add_compute(50_000).unwrap();
        b.begin_sec("s").unwrap();
        for _ in 0..4 {
            b.begin_task("t").unwrap();
            b.add_compute(10_000).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let p = predict(&tree, &o).unwrap();
        // 50_000 serial + ~10_000 parallel.
        assert!(
            (p.predicted_cycles as i64 - 60_000).unsigned_abs() < 500,
            "predicted {}",
            p.predicted_cycles
        );
    }

    #[test]
    fn locks_serialize_in_emulation() {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for _ in 0..4 {
            b.begin_task("t").unwrap();
            b.begin_lock(1).unwrap();
            b.add_compute(5_000).unwrap();
            b.end_lock(1).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let p = predict(&tree, &o).unwrap();
        assert!(
            (p.speedup - 1.0).abs() < 0.05,
            "lock-bound speedup {}",
            p.speedup
        );
    }

    #[test]
    fn traversal_overhead_subtraction_close_to_gross_minus_real() {
        // With overhead on, net should be near the zero-overhead gross.
        let tree = balanced_loop(64, 5_000);
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let clean = predict(&tree, &o).unwrap();
        o.access_node_overhead = 50;
        let noisy = predict(&tree, &o).unwrap();
        let rel = (noisy.predicted_cycles as f64 - clean.predicted_cycles as f64).abs()
            / clean.predicted_cycles as f64;
        assert!(rel < 0.05, "net-of-overhead deviates {rel}");
    }

    #[test]
    fn curve_skips_thread_counts_beyond_machine() {
        let tree = balanced_loop(8, 1_000);
        let o = zero_opts(1, Paradigm::OpenMp, 4);
        let curve = speedup_curve(&tree, &o, &[1, 2, 4, 8, 12]).unwrap();
        let counts: Vec<u32> = curve.iter().map(|&(t, _)| t).collect();
        assert_eq!(counts, vec![1, 2, 4]);
    }

    #[test]
    fn compressed_tree_same_prediction() {
        let tree = balanced_loop(500, 2_000);
        let (ctree, _) = proftree::compress_tree(&tree, proftree::CompressOptions::default());
        let mut o = zero_opts(4, Paradigm::OpenMp, 4);
        o.schedule = Schedule::static1();
        let a = predict(&tree, &o).unwrap();
        let b = predict(&ctree, &o).unwrap();
        let rel = (a.predicted_cycles as f64 - b.predicted_cycles as f64).abs()
            / a.predicted_cycles as f64;
        assert!(rel < 0.01, "compressed prediction deviates {rel}");
    }

    #[test]
    fn nowait_section_respected() {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        b.begin_task("t").unwrap();
        b.add_compute(1_000).unwrap();
        b.end_task().unwrap();
        b.end_sec(true).unwrap();
        let tree = b.finish().unwrap();
        let mut o = zero_opts(2, Paradigm::OpenMp, 2);
        o.schedule = Schedule::static1();
        let p = predict(&tree, &o).unwrap();
        assert!(p.predicted_cycles >= 1_000);
    }
}
