//! Property tests: the dependence profiler's verdicts must match the
//! ground truth of synthetic access patterns with *known* dependence
//! structure.

use proptest::prelude::*;

use depprof::{DepProfiler, Verdict};

/// A generated loop pattern with a known correct verdict.
#[derive(Debug, Clone)]
enum Pattern {
    /// `out[i] = f(in[i])` over disjoint cells — Parallel.
    Map { iters: u64, stride: u64 },
    /// `acc = g(acc, in[i])` — reduction.
    Reduce { iters: u64, cells: u64 },
    /// `a[i] = a[i-lag] + in[i]` — Serial with the given distance.
    Recurrence { iters: u64, lag: u64 },
    /// `tmp = f(i); out[i] = g(tmp)` — privatization.
    Scratch { iters: u64 },
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        (2u64..60, 1u64..16).prop_map(|(iters, stride)| Pattern::Map { iters, stride }),
        (3u64..60, 1u64..6).prop_map(|(iters, cells)| Pattern::Reduce { iters, cells }),
        (1u64..12, 1u64..8).prop_map(|(extra, lag)| Pattern::Recurrence {
            iters: lag + extra,
            lag
        }),
        (2u64..60).prop_map(|iters| Pattern::Scratch { iters }),
    ]
}

const IN: u64 = 0x1_0000;
const OUT: u64 = 0x2_0000;
const ACC: u64 = 0x3_0000;
const TMP: u64 = 0x4_0000;
const ARR: u64 = 0x5_0000;

fn drive(p: &mut DepProfiler, pattern: &Pattern) {
    match *pattern {
        Pattern::Map { iters, stride } => {
            p.loop_begin("map");
            for i in 0..iters {
                p.iter_begin();
                p.read(IN + i * stride * 8);
                p.write(OUT + i * stride * 8);
            }
            p.loop_end();
        }
        Pattern::Reduce { iters, cells } => {
            p.loop_begin("reduce");
            for i in 0..iters {
                p.iter_begin();
                p.read(IN + i * 8);
                let c = ACC + (i % cells) * 8;
                p.read(c);
                p.write(c);
            }
            p.loop_end();
        }
        Pattern::Recurrence { iters, lag } => {
            p.loop_begin("rec");
            for i in 0..iters {
                p.iter_begin();
                if i >= lag {
                    p.read(ARR + (i - lag) * 8);
                }
                p.write(ARR + i * 8);
            }
            p.loop_end();
        }
        Pattern::Scratch { iters } => {
            p.loop_begin("scratch");
            for i in 0..iters {
                p.iter_begin();
                p.write(TMP);
                p.read(TMP);
                p.write(OUT + i * 8);
            }
            p.loop_end();
        }
    }
}

fn expected(pattern: &Pattern) -> Verdict {
    match *pattern {
        Pattern::Map { .. } => Verdict::Parallel,
        // A reduction over cells touched at least twice; with many cells
        // and few iterations some cells are touched once — still counted
        // as reduction as long as ≥1 cell repeats, which
        // `iters ≥ cells + 1` guarantees… enforce in the strategy bounds.
        Pattern::Reduce { .. } => Verdict::ParallelWithReduction,
        Pattern::Recurrence { iters, lag } => {
            if iters > lag {
                Verdict::Serial
            } else {
                Verdict::Parallel
            }
        }
        Pattern::Scratch { .. } => Verdict::ParallelWithPrivatization,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Single-loop verdicts match ground truth.
    #[test]
    fn verdicts_match_known_patterns(pattern in pattern_strategy()) {
        // Guarantee reductions actually repeat a cell.
        if let Pattern::Reduce { iters, cells } = pattern {
            prop_assume!(iters > cells);
        }
        let mut p = DepProfiler::new();
        drive(&mut p, &pattern);
        let r = p.finish();
        prop_assert_eq!(r.loops[0].verdict(), expected(&pattern), "{:?}", pattern);
    }

    /// Recurrence distances are reported exactly.
    #[test]
    fn recurrence_distance_exact(extra in 1u64..20, lag in 1u64..10) {
        let mut p = DepProfiler::new();
        drive(&mut p, &Pattern::Recurrence { iters: lag + extra, lag });
        let r = p.finish();
        prop_assert_eq!(r.loops[0].min_flow_distance, Some(lag));
    }

    /// Loops in sequence don't contaminate each other.
    #[test]
    fn sequential_loops_independent(
        a in pattern_strategy(),
        b in pattern_strategy(),
    ) {
        if let Pattern::Reduce { iters, cells } = a {
            prop_assume!(iters > cells);
        }
        if let Pattern::Reduce { iters, cells } = b {
            prop_assume!(iters > cells);
        }
        let mut p = DepProfiler::new();
        drive(&mut p, &a);
        drive(&mut p, &b);
        let r = p.finish();
        prop_assert_eq!(r.loops[0].verdict(), expected(&a));
        prop_assert_eq!(r.loops[1].verdict(), expected(&b));
    }

    /// A parallel inner loop inside a serial outer loop keeps its verdict
    /// (each outer iteration maps over a fresh region).
    #[test]
    fn nesting_preserves_inner_verdict(outer in 2u64..8, inner in 2u64..16) {
        let mut p = DepProfiler::new();
        p.loop_begin("outer");
        for i in 0..outer {
            p.iter_begin();
            // Outer recurrence through ACC (plain flow, not read-first).
            if i > 0 {
                p.read(ACC);
            }
            p.loop_begin("inner");
            for j in 0..inner {
                p.iter_begin();
                p.read(IN + (i * inner + j) * 8);
                p.write(OUT + (i * inner + j) * 8);
            }
            p.loop_end();
            p.write(ACC);
        }
        p.loop_end();
        let r = p.finish();
        let inner_reports: Vec<_> =
            r.loops.iter().filter(|l| l.name == "inner").collect();
        prop_assert_eq!(inner_reports.len() as u64, outer);
        for ir in inner_reports {
            prop_assert_eq!(ir.verdict(), Verdict::Parallel);
        }
        let outer_report = r.loops.iter().find(|l| l.name == "outer").unwrap();
        prop_assert!(
            !outer_report.verdict().is_parallel() || outer <= 1,
            "outer loop carries a flow dep through ACC"
        );
    }
}
