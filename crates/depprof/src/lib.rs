#![warn(missing_docs)]

//! Dynamic data-dependence profiling for semi-automatic annotation.
//!
//! The paper's annotations are inserted manually, but §IV-A notes "this
//! step can be made fully or semi-automatic by … dynamic dependence
//! analyses (paper refs. 20, 21, 24, 25, 27)" — ref. 20 being SD3, the first
//! author's own dependence profiler. This crate implements that
//! substrate: a loop-aware shadow-memory profiler that classifies every
//! memory dependence as loop-carried or loop-independent per active
//! loop, detects reduction idioms, and turns the result into concrete
//! annotation suggestions (`PAR_SEC_BEGIN` candidates).
//!
//! Dependence taxonomy per loop:
//!
//! * **flow (RAW)** — a read observes a value written in an *earlier
//!   iteration*: the true parallelization blocker;
//! * **anti (WAR)** / **output (WAW)** — removable by privatisation, so
//!   they downgrade a loop to "parallelizable with privatization";
//! * **reduction** — a loop-carried flow dependence whose every access is
//!   a read-modify-write of the same location inside one iteration
//!   (`sum += …`): parallelizable with a reduction clause.
//!
//! # Example
//!
//! ```
//! use depprof::DepProfiler;
//!
//! let mut p = DepProfiler::new();
//! p.loop_begin("rows");
//! for i in 0..8u64 {
//!     p.iter_begin();
//!     p.read(0x1000 + i * 8);   // a[i]
//!     p.write(0x2000 + i * 8);  // b[i] = f(a[i]) — independent
//! }
//! p.loop_end();
//! let report = p.finish();
//! assert!(report.loops[0].verdict().is_parallel());
//! ```

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Address of one memory cell (byte-granular; kernels usually pass the
/// base address of each element, which is equivalent for disjointness).
pub type Addr = u64;

/// Classification of a loop's parallelizability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// No loop-carried dependences at all.
    Parallel,
    /// Only anti/output carried dependences: privatise and go.
    ParallelWithPrivatization,
    /// Flow dependences exist but every one is a reduction idiom.
    ParallelWithReduction,
    /// True loop-carried flow dependences: not parallelizable as-is.
    Serial,
}

impl Verdict {
    /// True when the loop can be annotated as a parallel section
    /// (possibly with privatisation/reduction transforms).
    pub fn is_parallel(&self) -> bool {
        !matches!(self, Verdict::Serial)
    }
}

/// Dependence counts and the verdict for one profiled loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopReport {
    /// Loop name (from `loop_begin`).
    pub name: String,
    /// Static nesting depth at which it ran (0 = outermost).
    pub depth: usize,
    /// Iterations observed.
    pub iterations: u64,
    /// Loop-carried flow (RAW) dependences, excluding reductions.
    pub carried_flow: u64,
    /// Loop-carried anti (WAR) dependences.
    pub carried_anti: u64,
    /// Loop-carried output (WAW) dependences.
    pub carried_output: u64,
    /// Distinct reduction locations detected.
    pub reduction_cells: u64,
    /// Smallest observed flow-dependence distance in iterations
    /// (`None` when there are no carried flow deps).
    pub min_flow_distance: Option<u64>,
}

impl LoopReport {
    /// The parallelizability verdict.
    pub fn verdict(&self) -> Verdict {
        if self.carried_flow > 0 {
            Verdict::Serial
        } else if self.reduction_cells > 0 {
            Verdict::ParallelWithReduction
        } else if self.carried_anti > 0 || self.carried_output > 0 {
            Verdict::ParallelWithPrivatization
        } else {
            Verdict::Parallel
        }
    }

    /// Human-readable annotation suggestion.
    pub fn suggestion(&self) -> String {
        match self.verdict() {
            Verdict::Parallel => format!(
                "loop '{}': PARALLELIZABLE — wrap in PAR_SEC/PAR_TASK annotations",
                self.name
            ),
            Verdict::ParallelWithPrivatization => format!(
                "loop '{}': parallelizable after PRIVATIZING {} anti / {} output deps",
                self.name, self.carried_anti, self.carried_output
            ),
            Verdict::ParallelWithReduction => format!(
                "loop '{}': parallelizable with a REDUCTION over {} location(s)",
                self.name, self.reduction_cells
            ),
            Verdict::Serial => format!(
                "loop '{}': NOT parallelizable — {} loop-carried flow dep(s), min distance {}",
                self.name,
                self.carried_flow,
                self.min_flow_distance.unwrap_or(0)
            ),
        }
    }
}

/// Whole-run dependence report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepReport {
    /// One entry per *dynamic* loop execution, in completion order.
    pub loops: Vec<LoopReport>,
}

impl DepReport {
    /// All suggestions, outermost loops first.
    pub fn suggestions(&self) -> Vec<String> {
        let mut sorted: Vec<&LoopReport> = self.loops.iter().collect();
        sorted.sort_by_key(|l| l.depth);
        sorted.iter().map(|l| l.suggestion()).collect()
    }
}

/// Per-address access history inside one loop.
#[derive(Debug, Clone, Copy, Default)]
struct CellState {
    /// Iteration of the last write (`u64::MAX` = never).
    last_write: u64,
    /// Iteration of the last read.
    last_read: u64,
    /// The cell has behaved as a read-modify-write in every iteration
    /// that touched it so far.
    reduction_like: bool,
    /// Iterations that touched the cell.
    touches: u64,
}

struct LoopFrame {
    name: String,
    depth: usize,
    /// Current iteration (starts at MAX until the first `iter_begin`).
    iter: u64,
    cells: HashMap<Addr, CellState>,
    carried_flow: u64,
    carried_anti: u64,
    carried_output: u64,
    min_flow_distance: Option<u64>,
    /// Reads so far in the *current iteration* (for reduction detection).
    read_this_iter: HashMap<Addr, bool>,
}

const NEVER: u64 = u64::MAX;

/// The dependence profiler. Drive it with loop/iteration markers and the
/// program's memory accesses; call [`DepProfiler::finish`] for the
/// report.
pub struct DepProfiler {
    stack: Vec<LoopFrame>,
    finished: Vec<LoopReport>,
}

impl Default for DepProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl DepProfiler {
    /// A fresh profiler.
    pub fn new() -> Self {
        DepProfiler {
            stack: Vec::new(),
            finished: Vec::new(),
        }
    }

    /// Enter a loop.
    pub fn loop_begin(&mut self, name: &str) {
        let depth = self.stack.len();
        self.stack.push(LoopFrame {
            name: name.to_string(),
            depth,
            iter: NEVER,
            cells: HashMap::new(),
            carried_flow: 0,
            carried_anti: 0,
            carried_output: 0,
            min_flow_distance: None,
            read_this_iter: HashMap::new(),
        });
    }

    /// Start the next iteration of the innermost loop.
    pub fn iter_begin(&mut self) {
        let frame = self.stack.last_mut().expect("iter_begin outside a loop");
        frame.iter = if frame.iter == NEVER {
            0
        } else {
            frame.iter + 1
        };
        frame.read_this_iter.clear();
    }

    /// Leave the innermost loop.
    pub fn loop_end(&mut self) {
        let frame = self.stack.pop().expect("loop_end without loop_begin");
        let reduction_cells = frame
            .cells
            .values()
            .filter(|c| c.reduction_like && c.touches >= 2)
            .count() as u64;
        self.finished.push(LoopReport {
            name: frame.name,
            depth: frame.depth,
            iterations: if frame.iter == NEVER {
                0
            } else {
                frame.iter + 1
            },
            carried_flow: frame.carried_flow,
            carried_anti: frame.carried_anti,
            carried_output: frame.carried_output,
            reduction_cells,
            min_flow_distance: frame.min_flow_distance,
        });
    }

    /// Observe a read of `addr`.
    pub fn read(&mut self, addr: Addr) {
        for frame in self.stack.iter_mut() {
            if frame.iter == NEVER {
                continue;
            }
            let cell = frame.cells.entry(addr).or_insert(CellState {
                last_write: NEVER,
                last_read: NEVER,
                reduction_like: true,
                touches: 0,
            });
            if cell.last_write != NEVER && cell.last_write < frame.iter {
                // Loop-carried RAW. A reduction candidate reads the cell
                // before (re)writing it each iteration — keep the flag and
                // count it separately at loop end.
                let dist = frame.iter - cell.last_write;
                if !cell.reduction_like {
                    frame.carried_flow += 1;
                    frame.min_flow_distance =
                        Some(frame.min_flow_distance.map_or(dist, |d| d.min(dist)));
                }
            }
            cell.last_read = frame.iter;
            frame.read_this_iter.insert(addr, true);
        }
    }

    /// Observe a write of `addr`.
    pub fn write(&mut self, addr: Addr) {
        for frame in self.stack.iter_mut() {
            if frame.iter == NEVER {
                continue;
            }
            let read_first = frame.read_this_iter.get(&addr).copied().unwrap_or(false);
            let cell = frame.cells.entry(addr).or_insert(CellState {
                last_write: NEVER,
                last_read: NEVER,
                reduction_like: false,
                touches: 0,
            });
            if cell.last_read != NEVER && cell.last_read < frame.iter {
                frame.carried_anti += 1;
            }
            if cell.last_write != NEVER && cell.last_write < frame.iter {
                frame.carried_output += 1;
            }
            // Reduction idiom: every touching iteration reads the cell
            // before writing it. Count one touch per iteration (first
            // write of the iteration).
            if cell.last_write != frame.iter {
                cell.touches += 1;
            }
            cell.reduction_like &= read_first;
            cell.last_write = frame.iter;
        }
    }

    /// Finish and report. Panics if loops are still open.
    pub fn finish(self) -> DepReport {
        assert!(
            self.stack.is_empty(),
            "{} loop(s) left open",
            self.stack.len()
        );
        DepReport {
            loops: self.finished,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_loop_is_parallel() {
        let mut p = DepProfiler::new();
        p.loop_begin("map");
        for i in 0..16u64 {
            p.iter_begin();
            p.read(0x1000 + i * 8);
            p.write(0x2000 + i * 8);
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::Parallel);
        assert_eq!(r.loops[0].iterations, 16);
    }

    #[test]
    fn recurrence_is_serial_with_distance_one() {
        // a[i] = a[i-1] + 1
        let mut p = DepProfiler::new();
        p.loop_begin("scan");
        for i in 1..10u64 {
            p.iter_begin();
            p.read(0x1000 + (i - 1) * 8);
            p.write(0x1000 + i * 8);
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::Serial);
        assert_eq!(r.loops[0].min_flow_distance, Some(1));
        assert!(r.loops[0].carried_flow > 0);
    }

    #[test]
    fn long_distance_recurrence_reported() {
        // a[i] = a[i-4]: distance 4 (strip-mining opportunity).
        let mut p = DepProfiler::new();
        p.loop_begin("lag4");
        for i in 4..20u64 {
            p.iter_begin();
            p.read(0x1000 + (i - 4) * 8);
            p.write(0x1000 + i * 8);
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].min_flow_distance, Some(4));
    }

    #[test]
    fn sum_reduction_detected() {
        // sum += a[i]
        let mut p = DepProfiler::new();
        p.loop_begin("sum");
        for i in 0..32u64 {
            p.iter_begin();
            p.read(0x1000 + i * 8); // a[i]
            p.read(0x9000); // sum
            p.write(0x9000); // sum = sum + a[i]
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::ParallelWithReduction);
        assert_eq!(r.loops[0].reduction_cells, 1);
        assert_eq!(r.loops[0].carried_flow, 0);
    }

    #[test]
    fn scratch_reuse_needs_privatization() {
        // tmp written then read within each iteration: WAR/WAW across
        // iterations, no flow.
        let mut p = DepProfiler::new();
        p.loop_begin("scratch");
        for i in 0..8u64 {
            p.iter_begin();
            p.write(0x7000); // tmp = f(i)
            p.read(0x7000); // use tmp
            p.write(0x2000 + i * 8);
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::ParallelWithPrivatization);
        assert!(r.loops[0].carried_anti > 0 || r.loops[0].carried_output > 0);
    }

    #[test]
    fn nested_loops_judged_independently() {
        // Outer loop carries a dependence through `acc`; inner is a pure
        // map over disjoint cells.
        let mut p = DepProfiler::new();
        p.loop_begin("outer");
        for i in 0..4u64 {
            p.iter_begin();
            p.read(0x9000);
            p.loop_begin("inner");
            for j in 0..4u64 {
                p.iter_begin();
                p.read(0x1000 + (i * 4 + j) * 8);
                p.write(0x2000 + (i * 4 + j) * 8);
            }
            p.loop_end();
            p.write(0x9000); // acc = g(acc, …): read-before-write
        }
        p.loop_end();
        let r = p.finish();
        let outer = r.loops.iter().find(|l| l.name == "outer").unwrap();
        let inner = r.loops.iter().find(|l| l.name == "inner").unwrap();
        assert_eq!(inner.verdict(), Verdict::Parallel);
        assert_eq!(outer.verdict(), Verdict::ParallelWithReduction);
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
    }

    #[test]
    fn histogram_with_shared_bins_is_reduction() {
        // counts[key(i)] += 1 with colliding keys across iterations.
        let mut p = DepProfiler::new();
        p.loop_begin("hist");
        for i in 0..64u64 {
            p.iter_begin();
            p.read(0x1000 + i * 4);
            let bin = 0x5000 + (i % 4) * 4;
            p.read(bin);
            p.write(bin);
        }
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::ParallelWithReduction);
        assert_eq!(r.loops[0].reduction_cells, 4);
    }

    #[test]
    fn false_reduction_write_before_read_is_flow() {
        // x written in iteration i, read in iteration i+1 WITHOUT the
        // read-first idiom: a genuine flow dep.
        let mut p = DepProfiler::new();
        p.loop_begin("chain");
        for _i in 0..8u64 {
            p.iter_begin();
            p.write(0x9000);
            p.read(0x9000);
        }
        p.loop_end();
        // Within-iteration write→read is loop-independent; but now cross:
        let mut p2 = DepProfiler::new();
        p2.loop_begin("cross");
        p2.iter_begin();
        p2.write(0x9000);
        p2.iter_begin();
        p2.read(0x9000);
        p2.loop_end();
        let r2 = p2.finish();
        assert_eq!(r2.loops[0].verdict(), Verdict::Serial);
        let r = p.finish();
        assert_eq!(r.loops[0].verdict(), Verdict::ParallelWithPrivatization);
    }

    #[test]
    fn suggestions_sorted_outermost_first() {
        let mut p = DepProfiler::new();
        p.loop_begin("outer");
        p.iter_begin();
        p.loop_begin("inner");
        p.iter_begin();
        p.read(0x10);
        p.loop_end();
        p.loop_end();
        let r = p.finish();
        let sugg = r.suggestions();
        assert!(sugg[0].contains("outer"));
        assert!(sugg[1].contains("inner"));
    }

    #[test]
    fn empty_loop_reports_zero_iterations() {
        let mut p = DepProfiler::new();
        p.loop_begin("never");
        p.loop_end();
        let r = p.finish();
        assert_eq!(r.loops[0].iterations, 0);
        assert_eq!(r.loops[0].verdict(), Verdict::Parallel);
    }
}
