//! Analytical speedup laws (paper §II-A).
//!
//! These models bound or sketch speedup from a couple of scalar
//! parameters. The paper's point is that they "have difficulty
//! considering realistic and runtime characteristics" — they serve here as
//! reference curves in the experiments.

/// Amdahl's law: speedup on `t` processors with parallelisable fraction
/// `p ∈ [0, 1]` of the serial runtime.
pub fn amdahl(p: f64, t: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let t = t.max(1) as f64;
    1.0 / ((1.0 - p) + p / t)
}

/// Gustafson's law (scaled speedup): the parallel part grows with the
/// machine.
pub fn gustafson(p: f64, t: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let t = t.max(1) as f64;
    (1.0 - p) + p * t
}

/// Karp–Flatt metric: the *experimentally determined serial fraction*
/// implied by a measured speedup `s` on `t` processors. Values drifting
/// upward with `t` indicate overhead growth rather than inherent
/// serialism.
pub fn karp_flatt(s: f64, t: u32) -> f64 {
    let t = t.max(2) as f64;
    ((1.0 / s) - (1.0 / t)) / (1.0 - 1.0 / t)
}

/// Eyerman–Eeckhout's critical-section extension of Amdahl's law.
///
/// `p_seq` is the sequential fraction, `p_cs` the fraction spent in
/// critical sections (of the whole program), and `p_ctn` the probability a
/// critical-section entry contends. The contended part serialises; the
/// uncontended part parallelises:
///
/// `T(t) = p_seq + (1 − p_seq − p_cs)/t + p_cs·(1 − p_ctn)/t + p_cs·p_ctn`
pub fn eyerman_eeckhout(p_seq: f64, p_cs: f64, p_ctn: f64, t: u32) -> f64 {
    let t = t.max(1) as f64;
    let p_seq = p_seq.clamp(0.0, 1.0);
    let p_cs = p_cs.clamp(0.0, 1.0 - p_seq);
    let p_ctn = p_ctn.clamp(0.0, 1.0);
    let par = (1.0 - p_seq - p_cs).max(0.0);
    let time = p_seq + par / t + p_cs * (1.0 - p_ctn) / t + p_cs * p_ctn;
    1.0 / time
}

/// Hill–Marty symmetric-multicore Amdahl: `n` base-core equivalents
/// grouped into chunks of `r` (each chunk performs `√r`).
pub fn hill_marty_symmetric(p: f64, n: u32, r: u32) -> f64 {
    let p = p.clamp(0.0, 1.0);
    let n = n.max(1) as f64;
    let r = (r.max(1) as f64).min(n);
    let perf = r.sqrt();
    1.0 / ((1.0 - p) / perf + p * r / (perf * n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert!((amdahl(0.0, 64) - 1.0).abs() < 1e-12);
        assert!((amdahl(1.0, 8) - 8.0).abs() < 1e-12);
        // p = 0.9, t → ∞ ⇒ 10.
        assert!((amdahl(0.9, 1_000_000) - 10.0).abs() < 0.01);
        assert!((amdahl(0.5, 2) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gustafson_scales_linearly() {
        assert!((gustafson(1.0, 12) - 12.0).abs() < 1e-12);
        assert!((gustafson(0.5, 10) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn karp_flatt_recovers_serial_fraction() {
        // If speedup follows Amdahl exactly, Karp–Flatt returns (1−p).
        for t in [2u32, 4, 8, 16] {
            let s = amdahl(0.8, t);
            let e = karp_flatt(s, t);
            assert!((e - 0.2).abs() < 1e-9, "t={t} e={e}");
        }
    }

    #[test]
    fn eyerman_eeckhout_brackets() {
        // No critical sections → plain Amdahl.
        let t = 8;
        assert!((eyerman_eeckhout(0.2, 0.0, 0.5, t) - amdahl(0.8, t)).abs() < 1e-12);
        // Fully contended CS behaves like extra serial fraction.
        let full = eyerman_eeckhout(0.1, 0.3, 1.0, t);
        assert!((full - amdahl(0.6, t) * 0.0 - 1.0 / (0.4 + 0.6 / 8.0)).abs() < 1e-9);
        // Contention only hurts.
        assert!(eyerman_eeckhout(0.1, 0.3, 1.0, t) <= eyerman_eeckhout(0.1, 0.3, 0.0, t));
    }

    #[test]
    fn hill_marty_r1_is_amdahl() {
        for t in [4u32, 16, 64] {
            assert!((hill_marty_symmetric(0.9, t, 1) - amdahl(0.9, t)).abs() < 1e-12);
        }
        // Bigger cores help the serial part.
        let small_cores = hill_marty_symmetric(0.5, 64, 1);
        let big_cores = hill_marty_symmetric(0.5, 64, 16);
        assert!(big_cores > small_cores);
    }
}
