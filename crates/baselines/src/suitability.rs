//! A Suitability-like emulator (Intel Parallel Advisor, paper §II-B/VII-B).
//!
//! Suitability emulates an annotated program's parallel-region tree with a
//! priority-queue interpreter — the same family as our FF — but, per the
//! paper's experimentation:
//!
//! * it "does not provide speedup predictions for a specific scheduling";
//!   its emulator behaves close to OpenMP's `(dynamic,1)` — so that's the
//!   only policy used here;
//! * it shares the FF's nested-parallelism weakness (no OS preemption
//!   model, round-robin nested mapping — Fig. 7/Fig. 11(f));
//! * it has no memory performance model (`Suit` in Fig. 12 never
//!   saturates);
//! * it overestimates the overhead of frequently-invoked inner parallel
//!   loops (the paper's explanation for its LU misprediction) — modelled
//!   by a heavy fixed fork cost charged per nested region entry;
//! * out of the box it only predicts for power-of-two CPU counts; other
//!   counts are interpolated (the paper interpolates 6/10/12 in Fig. 12).

use ffemu::{predict, FfOptions, FfPrediction};
use machsim::Schedule;
use omp_rt::OmpOverheads;
use proftree::ProgramTree;

/// Fixed overheads of the Suitability-like emulator: a heavy region fork
/// cost, applied to *every* region entry including nested ones.
fn suitability_overheads() -> OmpOverheads {
    let mut o = OmpOverheads::westmere_scaled();
    // Advisor assumes a generic threading layer with conservative
    // (pessimistic) region costs; this is what overestimates the cost of
    // frequent inner-loop parallelism.
    o.parallel_start = 30_000;
    o.parallel_end = 12_000;
    o.dynamic_dispatch = 250;
    o.iter_start = 60;
    o
}

/// Predict with the Suitability-like emulator. `cpus` may be any value;
/// out-of-the-box the tool evaluates the nearest power-of-two counts and
/// interpolates, which this reproduces.
pub fn suitability_predict(tree: &ProgramTree, cpus: u32) -> FfPrediction {
    let cpus = cpus.max(1);
    if cpus.is_power_of_two() {
        return raw_predict(tree, cpus);
    }
    // Interpolate speedup between the bracketing powers of two.
    let lo = 1u32 << (31 - cpus.leading_zeros());
    let hi = lo * 2;
    let plo = raw_predict(tree, lo);
    let phi = raw_predict(tree, hi);
    let w = (cpus - lo) as f64 / (hi - lo) as f64;
    let speedup = plo.speedup + (phi.speedup - plo.speedup) * w;
    let serial = plo.serial_cycles;
    FfPrediction {
        predicted_cycles: ((serial as f64 / speedup).round() as u64).max(1),
        serial_cycles: serial,
        speedup,
        sections: plo.sections,
    }
}

fn raw_predict(tree: &ProgramTree, cpus: u32) -> FfPrediction {
    let opts = FfOptions {
        cpus,
        schedule: Schedule::dynamic1(),
        overheads: suitability_overheads(),
        // No memory performance model (Table I).
        use_burden: false,
        contended_lock_penalty: 2_000,
        // Advisor's emulator has no pipeline model (Table I): pipeline
        // regions are treated as serial code.
        model_pipelines: false,
        expand_runs: false,
    };
    predict(tree, opts)
}

/// Speedup curve over arbitrary CPU counts (interpolated off powers of
/// two, like the paper's Fig. 12 'Suit' series).
pub fn suitability_curve(tree: &ProgramTree, cpu_counts: &[u32]) -> Vec<(u32, f64)> {
    cpu_counts
        .iter()
        .map(|&c| (c, suitability_predict(tree, c).speedup))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::{BurdenTable, NodeKind, TreeBuilder};

    fn coarse_loop(n: usize, len: u64) -> ProgramTree {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for _ in 0..n {
            b.begin_task("t").unwrap();
            b.add_compute(len).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn coarse_grained_loop_predicted_well() {
        let tree = coarse_loop(32, 1_000_000);
        let p = suitability_predict(&tree, 4);
        assert!((p.speedup - 4.0).abs() < 0.2, "speedup {}", p.speedup);
    }

    #[test]
    fn interpolates_non_power_of_two() {
        let tree = coarse_loop(64, 1_000_000);
        let p4 = suitability_predict(&tree, 4).speedup;
        let p8 = suitability_predict(&tree, 8).speedup;
        let p6 = suitability_predict(&tree, 6).speedup;
        let expect = (p4 + p8) / 2.0;
        assert!((p6 - expect).abs() < 1e-9, "p6 {p6} != {expect}");
    }

    #[test]
    fn ignores_burden_factors() {
        let mut tree = coarse_loop(16, 1_000_000);
        let sec = tree.top_level_sections()[0];
        if let NodeKind::Sec { burden, .. } = &mut tree.node_mut(sec).kind {
            *burden = BurdenTable::from_entries(vec![(8, 2.0)]);
        }
        let p = suitability_predict(&tree, 8);
        // A memory-oblivious tool still predicts near-linear speedup.
        assert!(p.speedup > 7.0, "speedup {}", p.speedup);
    }

    #[test]
    fn inner_loop_parallelism_penalised() {
        // LU-like shape: outer *serial* iterations each invoking a
        // parallel inner loop → the heavy per-region cost accumulates.
        let mut b = TreeBuilder::new();
        for _ in 0..40 {
            b.begin_sec("inner").unwrap();
            for _ in 0..8 {
                b.begin_task("t").unwrap();
                b.add_compute(40_000).unwrap();
                b.end_task().unwrap();
            }
            b.end_sec(false).unwrap();
        }
        let tree = b.finish().unwrap();
        let suit = suitability_predict(&tree, 8);
        let ff = predict(
            &tree,
            FfOptions {
                cpus: 8,
                schedule: Schedule::dynamic1(),
                overheads: OmpOverheads::westmere_scaled(),
                use_burden: false,
                contended_lock_penalty: 2_000,
                model_pipelines: true,
                expand_runs: false,
            },
        );
        assert!(
            suit.speedup < ff.speedup - 0.5,
            "suitability {} should clearly underpredict vs ff {}",
            suit.speedup,
            ff.speedup
        );
    }

    #[test]
    fn curve_over_paper_cpu_counts() {
        let tree = coarse_loop(48, 500_000);
        let curve = suitability_curve(&tree, &[2, 4, 6, 8, 10, 12]);
        assert_eq!(curve.len(), 6);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 0.15,
                "curve wildly non-monotone: {curve:?}"
            );
        }
    }
}
