#![warn(missing_docs)]

//! Baselines Parallel Prophet is compared against (paper §II, Table I,
//! Fig. 11(f), Fig. 12 'Suit' series).

pub mod analytical;
pub mod kismet;
pub mod suitability;

pub use analytical::{amdahl, eyerman_eeckhout, gustafson, hill_marty_symmetric, karp_flatt};
pub use kismet::kismet_upper_bound;
pub use suitability::{suitability_curve, suitability_predict};
