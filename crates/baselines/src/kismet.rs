//! A Kismet-like upper-bound estimator (paper §II-B).
//!
//! Kismet performs hierarchical critical-path analysis on an unmodified
//! serial program and reports an *upper bound* on achievable speedup — it
//! "cannot predict speedup saturation" and does not model scheduling or
//! memory. Our stand-in computes, per top-level section, the Brent bound
//! `max(work/t, span)` over the program tree (the tree gives us exactly
//! the region hierarchy Kismet would discover), and leaves top-level
//! serial code serial.

use proftree::stats::span_of;
use proftree::{Cycles, ProgramTree};

/// Upper-bound speedup for `t` processors.
pub fn kismet_upper_bound(tree: &ProgramTree, t: u32) -> f64 {
    let t = t.max(1) as u64;
    let serial: Cycles = tree.top_level_serial_length();
    let mut bound_time = serial as f64;
    for sec in tree.top_level_sections() {
        let work = tree.node(sec).length as f64;
        let span = span_of(tree, sec) as f64;
        bound_time += (work / t as f64).max(span);
    }
    let total = tree.total_length() as f64;
    if bound_time <= 0.0 {
        1.0
    } else {
        total / bound_time
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proftree::TreeBuilder;

    fn loop_tree(lens: &[u64]) -> ProgramTree {
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for &l in lens {
            b.begin_task("t").unwrap();
            b.add_compute(l).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn balanced_loop_bound_is_linear_until_span() {
        let tree = loop_tree(&[100; 8]);
        assert!((kismet_upper_bound(&tree, 4) - 4.0).abs() < 1e-9);
        assert!((kismet_upper_bound(&tree, 8) - 8.0).abs() < 1e-9);
        // Beyond 8 tasks, the span (one task) limits.
        assert!((kismet_upper_bound(&tree, 64) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_caps_the_bound() {
        // One long task dominates.
        let tree = loop_tree(&[1000, 10, 10, 10]);
        let bound = kismet_upper_bound(&tree, 4);
        assert!((bound - 1030.0 / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn serial_code_never_parallelised() {
        let mut b = TreeBuilder::new();
        b.add_compute(500).unwrap();
        b.begin_sec("s").unwrap();
        b.begin_task("t").unwrap();
        b.add_compute(500).unwrap();
        b.end_task().unwrap();
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        // Even with infinite processors: 1000 / (500 + 500) = 1.
        assert!((kismet_upper_bound(&tree, 1_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bound_is_at_least_one_and_at_most_t() {
        let tree = loop_tree(&[7, 13, 29, 31, 53, 97]);
        for t in [1u32, 2, 3, 4, 8] {
            let b = kismet_upper_bound(&tree, t);
            assert!(b >= 1.0 - 1e-9);
            assert!(b <= t as f64 + 1e-9);
        }
    }
}
