//! Property tests for the analytical baselines: the classic laws must
//! satisfy their textbook identities and orderings for all parameters.

use proptest::prelude::*;

use baselines::{
    amdahl, eyerman_eeckhout, gustafson, hill_marty_symmetric, karp_flatt, kismet_upper_bound,
    suitability_predict,
};
use proftree::TreeBuilder;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Amdahl: bounded by 1/(1−p) and by t; monotone in both arguments.
    #[test]
    fn amdahl_invariants(p in 0.0f64..1.0, t in 1u32..1024) {
        let s = amdahl(p, t);
        prop_assert!(s >= 1.0 - 1e-12);
        prop_assert!(s <= t as f64 + 1e-9);
        if p < 1.0 {
            prop_assert!(s <= 1.0 / (1.0 - p) + 1e-9);
        }
        prop_assert!(amdahl(p, t + 1) >= s - 1e-12, "not monotone in t");
        prop_assert!(amdahl((p + 0.001).min(1.0), t) >= s - 1e-12, "not monotone in p");
    }

    /// Gustafson dominates Amdahl for the same (p, t) and is linear in t.
    #[test]
    fn gustafson_dominates_amdahl(p in 0.0f64..1.0, t in 1u32..256) {
        prop_assert!(gustafson(p, t) >= amdahl(p, t) - 1e-9);
        let g1 = gustafson(p, t);
        let g2 = gustafson(p, t + 1);
        prop_assert!((g2 - g1 - p).abs() < 1e-9, "slope must be p");
    }

    /// Karp–Flatt inverts Amdahl exactly: feeding Amdahl's speedup back
    /// recovers the serial fraction.
    #[test]
    fn karp_flatt_inverts_amdahl(p in 0.01f64..0.99, t in 2u32..512) {
        let s = amdahl(p, t);
        let e = karp_flatt(s, t);
        prop_assert!((e - (1.0 - p)).abs() < 1e-6, "e {e} vs {}", 1.0 - p);
    }

    /// Eyerman–Eeckhout: contention only hurts; zero-cs case equals
    /// Amdahl; result bounded by t.
    #[test]
    fn eyerman_eeckhout_invariants(
        p_seq in 0.0f64..0.5,
        p_cs in 0.0f64..0.5,
        p_ctn in 0.0f64..1.0,
        t in 1u32..128,
    ) {
        let s = eyerman_eeckhout(p_seq, p_cs, p_ctn, t);
        prop_assert!(s >= 1.0 - 1e-9);
        prop_assert!(s <= t as f64 + 1e-9);
        let less_contended = eyerman_eeckhout(p_seq, p_cs, (p_ctn - 0.05).max(0.0), t);
        prop_assert!(less_contended >= s - 1e-9);
        let no_cs = eyerman_eeckhout(p_seq, 0.0, p_ctn, t);
        prop_assert!((no_cs - amdahl(1.0 - p_seq, t)).abs() < 1e-9);
    }

    /// Hill–Marty reduces to Amdahl at r = 1 and never exceeds n.
    #[test]
    fn hill_marty_invariants(p in 0.0f64..1.0, n_exp in 2u32..8, r_exp in 0u32..6) {
        let n = 1u32 << n_exp;
        let r = (1u32 << r_exp).min(n);
        let s = hill_marty_symmetric(p, n, r);
        prop_assert!(s <= n as f64 + 1e-9);
        prop_assert!((hill_marty_symmetric(p, n, 1) - amdahl(p, n)).abs() < 1e-9);
    }

    /// The Kismet-like bound really is an upper bound on the
    /// Suitability-like emulator's prediction (an emulator with overheads
    /// can never beat the zero-overhead critical-path limit).
    #[test]
    fn kismet_bounds_suitability(
        lens in proptest::collection::vec(10_000u64..500_000, 1..24),
        cpus_exp in 1u32..4,
    ) {
        let cpus = 1u32 << cpus_exp;
        let mut b = TreeBuilder::new();
        b.begin_sec("s").unwrap();
        for &l in &lens {
            b.begin_task("t").unwrap();
            b.add_compute(l).unwrap();
            b.end_task().unwrap();
        }
        b.end_sec(false).unwrap();
        let tree = b.finish().unwrap();
        let bound = kismet_upper_bound(&tree, cpus);
        let suit = suitability_predict(&tree, cpus).speedup;
        prop_assert!(
            suit <= bound + 1e-6,
            "suitability {suit} above the critical-path bound {bound}"
        );
    }
}
