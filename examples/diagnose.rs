//! Bottleneck diagnosis (Table III: the FF is "ideal for … diagnose
//! bottleneck"): a program with four differently-limited sections, each
//! correctly attributed, with the "speedup if fixed" headline per
//! section.
//!
//! Run with `cargo run --release --example diagnose`.

use machsim::Schedule;
use prophet_core::{diagnose, Prophet};
use tracer::{AnnotatedProgram, Tracer};

/// Four phases, four different reasons not to scale.
struct FourPhases;

impl AnnotatedProgram for FourPhases {
    fn name(&self) -> &str {
        "four_phases"
    }

    fn run(&self, t: &mut Tracer) {
        // Phase 1: clean data-parallel work — scales.
        t.par_sec_begin("transform");
        for _ in 0..48 {
            t.par_task_begin("t");
            t.work(200_000);
            t.par_task_end();
        }
        t.par_sec_end(false);

        // Phase 2: a hot global lock — serialises.
        t.par_sec_begin("global_counter");
        for _ in 0..48 {
            t.par_task_begin("t");
            t.work(30_000);
            t.lock_begin(1);
            t.work(90_000);
            t.lock_end(1);
            t.par_task_end();
        }
        t.par_sec_end(false);

        // Phase 3: thousands of microscopic tasks — overhead-bound.
        t.par_sec_begin("micro_tasks");
        for _ in 0..4_000 {
            t.par_task_begin("t");
            t.work(60);
            t.par_task_end();
        }
        t.par_sec_end(false);

        // Phase 4: one giant task among dwarfs — imbalance/critical path.
        t.par_sec_begin("skewed");
        t.par_task_begin("giant");
        t.work(4_000_000);
        t.par_task_end();
        for _ in 0..11 {
            t.par_task_begin("dwarf");
            t.work(80_000);
            t.par_task_end();
        }
        t.par_sec_end(false);
    }
}

fn main() {
    let prophet = Prophet::new();
    let profiled = prophet.profile(&FourPhases);
    let d = diagnose(&profiled.tree, 8, Schedule::static_block());
    println!("{}", d.render());
    println!(
        "Fixing the biggest limiter first: the table is sorted by program \
         share, and 'fixing it' shows what each repair would buy."
    );
}
