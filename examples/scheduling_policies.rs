//! The paper's Fig. 5 walk-through: three unequal iterations with a
//! critical section, parallelised on two cores under three OpenMP
//! schedules. Shows why speedup prediction must model the schedule.
//!
//! Run with `cargo run --release --example scheduling_policies`.

use machsim::prog::{POp, ParSection, ParallelProgram, TaskBody};
use machsim::{Machine, MachineConfig, Schedule, WorkPacket};
use omp_rt::OmpOverheads;
use prophet_core::{Emulator, PredictOptions, Prophet};
use std::rc::Rc;
use tracer::{AnnotatedProgram, Tracer};

/// Fig. 5's loop: iterations of 650, 600, and 250 cycles, each with a
/// locked middle segment.
struct Fig5Loop;

impl AnnotatedProgram for Fig5Loop {
    fn name(&self) -> &str {
        "fig5"
    }

    fn run(&self, t: &mut Tracer) {
        // (pre, locked, post) per iteration, in paper cycle units scaled
        // ×1000 so runtime overheads stay negligible.
        const ITERS: [(u64, u64, u64); 3] = [(150, 450, 50), (100, 300, 200), (150, 50, 50)];
        t.par_sec_begin("loop");
        for &(pre, locked, post) in &ITERS {
            t.par_task_begin("iter");
            t.work(pre * 1000);
            t.lock_begin(1);
            t.work(locked * 1000);
            t.lock_end(1);
            t.work(post * 1000);
            t.par_task_end();
        }
        t.par_sec_end(false);
    }
}

fn main() {
    let prophet = Prophet::new();
    let profiled = prophet.profile(&Fig5Loop);
    println!("serial time: {} cycles\n", profiled.profile.net_cycles);
    println!("paper Fig. 5 expectations on 2 cores:");
    println!("  (static,1)  -> ~1.30x   (T0: I0,I2 | T1: I1)");
    println!("  (static)    -> ~1.20x   (T0: I0,I1 | T1: I2)");
    println!("  (dynamic,1) -> ~1.58x   (T0: I0 | T1: I1,I2)\n");

    for schedule in [
        Schedule::static1(),
        Schedule::static_block(),
        Schedule::dynamic1(),
    ] {
        let mut line = format!("{:<12}", schedule.name());
        for emulator in [Emulator::FastForward, Emulator::Synthesizer] {
            let p = prophet
                .predict(
                    &profiled,
                    &PredictOptions {
                        threads: 2,
                        schedule,
                        emulator,
                        ..Default::default()
                    },
                )
                .expect("prediction");
            line.push_str(&format!(
                "  {}={:.2}x",
                match emulator {
                    Emulator::FastForward => "FF",
                    Emulator::Synthesizer => "SYN",
                },
                p.speedup
            ));
        }
        println!("{line}");
    }

    // Draw the actual machine schedules, Fig. 5 style (threads: 0 =
    // worker 0/master, 1 = worker 1).
    println!(
        "
machine schedules (Gantt, 64 columns ≈ the paper's Fig. 5 boxes):"
    );
    for schedule in [
        Schedule::static1(),
        Schedule::static_block(),
        Schedule::dynamic1(),
    ] {
        let mk = |a: u64, l: u64, b: u64| {
            Rc::new(TaskBody {
                ops: vec![
                    POp::Work(WorkPacket::cpu(a * 1000)),
                    POp::Locked {
                        lock: 1,
                        work: WorkPacket::cpu(l * 1000),
                    },
                    POp::Work(WorkPacket::cpu(b * 1000)),
                ],
            })
        };
        let prog = ParallelProgram {
            ops: vec![POp::Par(ParSection {
                tasks: vec![mk(150, 450, 50), mk(100, 300, 200), mk(150, 50, 50)].into(),
                schedule,
                nowait: false,
                team: Some(2),
            })],
        };
        let mut m = Machine::new(MachineConfig::small(2));
        m.enable_tracing();
        let stats =
            omp_rt::run_program_on(&mut m, &prog, OmpOverheads::zero(), 2).expect("machine run");
        println!(
            "
{} ({} cycles):",
            schedule.name(),
            stats.elapsed_cycles
        );
        print!(
            "{}",
            stats.timeline.expect("tracing enabled").render_gantt(64)
        );
    }
}
