//! Pipeline parallelism (the paper's §VII-E extension): a transcoder-like
//! stream of frames flowing through decode → filter → encode → mux
//! stages. Shows the bottleneck-stage law and how Parallel Prophet
//! predicts pipeline speedup from the annotated serial program, while the
//! Suitability-like baseline (no pipeline model) predicts none.
//!
//! Run with `cargo run --release --example pipeline`.

use baselines::suitability_predict;
use machsim::{Paradigm, Schedule};
use prophet_core::{Emulator, PredictOptions, Prophet, SpeedupReport};
use workloads::{run_real, PipelineParams, PipelineWl, RealOptions};

fn main() {
    // 120 frames through 4 stages: 20k / 60k / 35k / 10k work units.
    let wl = PipelineWl::new(PipelineParams::transcoder(120));
    let total: u64 = wl.params.stage_cost.iter().sum();
    let bottleneck = *wl.params.stage_cost.iter().max().expect("stages");
    println!(
        "pipeline: {} items, stages {:?} (bottleneck law predicts ≤ {:.2}x)\n",
        wl.params.items,
        wl.params.stage_cost,
        total as f64 / bottleneck as f64
    );

    let prophet = Prophet::new();
    let profiled = prophet.profile(&wl);
    let stats = proftree::TreeStats::gather(&profiled.tree);
    println!(
        "profiled: {} pipe node(s), {} stored stage nodes, {} tree nodes\n",
        stats.pipes,
        stats.stages,
        profiled.tree.len()
    );

    let mut report = SpeedupReport::new(
        "transcoder pipeline",
        vec!["Real".into(), "FF".into(), "SYN".into(), "Suit".into()],
    );
    for threads in [2u32, 4, 6, 8] {
        // A pipeline always runs all its stage threads; "t threads" means
        // a t-core machine.
        let mut real_opts = RealOptions::new(threads, Paradigm::OpenMp, Schedule::static_block());
        real_opts.machine = real_opts.machine.with_cores(threads);
        let real = run_real(&profiled.tree, &real_opts).expect("ground truth");
        let ff = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    emulator: Emulator::FastForward,
                    ..Default::default()
                },
            )
            .expect("ff");
        let syn = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    emulator: Emulator::Synthesizer,
                    ..Default::default()
                },
            )
            .expect("syn");
        let suit = suitability_predict(&profiled.tree, threads);
        report.push_row(
            threads,
            vec![
                Some(real.speedup),
                Some(ff.speedup),
                Some(syn.speedup),
                Some(suit.speedup),
            ],
        );
    }
    println!("{}", report.render());
    println!(
        "The speedup flattens at the bottleneck stage's share of the work; \
         adding threads beyond the stage count cannot help. Suitability's \
         emulator has no pipeline model and predicts ~1x (its Table I 'x')."
    );
}
