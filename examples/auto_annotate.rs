//! Semi-automatic annotation (paper §IV-A): run the serial program once
//! under the dependence profiler, let it tell you *which loops are safe
//! to annotate*, then feed the annotated program to Parallel Prophet for
//! the speedup estimate — the full "SD3 → annotations → prediction"
//! workflow the paper sketches.
//!
//! Run with `cargo run --release --example auto_annotate`.

use depprof::{DepProfiler, Verdict};
use machsim::Schedule;
use prophet_core::{Emulator, PredictOptions, Prophet};
use tracer::{AnnotatedProgram, Tracer};

const W: u64 = 640;
const H: u64 = 480;

/// Virtual addresses of the program's arrays.
mod addrs {
    pub const IMG: u64 = 0x100_0000;
    pub const OUT: u64 = 0x200_0000;
    pub const HIST: u64 = 0x300_0000;
    pub const CDF: u64 = 0x400_0000;
}

/// Step 1 — run the *unannotated* program under the dependence profiler.
fn dependence_pass() -> depprof::DepReport {
    let mut p = DepProfiler::new();

    // Loop A: 3×3 blur — reads img, writes out: independent rows.
    p.loop_begin("blur_rows");
    for y in 1..H - 1 {
        p.iter_begin();
        for x in 1..W - 1 {
            for dy in 0..3u64 {
                for dx in 0..3u64 {
                    p.read(addrs::IMG + ((y + dy - 1) * W + (x + dx - 1)) * 4);
                }
            }
            p.write(addrs::OUT + (y * W + x) * 4);
        }
    }
    p.loop_end();

    // Loop B: histogram — hist[pix] += 1: reduction over shared bins.
    p.loop_begin("histogram");
    for y in 0..H {
        p.iter_begin();
        for x in 0..W {
            p.read(addrs::OUT + (y * W + x) * 4);
            let bin = addrs::HIST + ((x * 7 + y * 13) % 256) * 4;
            p.read(bin);
            p.write(bin);
        }
    }
    p.loop_end();

    // Loop C: CDF prefix scan — cdf[i] = cdf[i-1] + hist[i]: serial.
    p.loop_begin("cdf_scan");
    for i in 1..256u64 {
        p.iter_begin();
        p.read(addrs::CDF + (i - 1) * 8);
        p.read(addrs::HIST + i * 4);
        p.write(addrs::CDF + i * 8);
    }
    p.loop_end();

    p.finish()
}

/// Step 2 — the program annotated per the profiler's verdicts: blur and
/// histogram parallel (histogram via per-thread partial histograms, the
/// reduction transform), the CDF scan left serial.
struct Annotated;

impl AnnotatedProgram for Annotated {
    fn name(&self) -> &str {
        "image_pipeline"
    }

    fn run(&self, t: &mut Tracer) {
        // Blur (parallel; heavy).
        t.par_sec_begin("blur_rows");
        for _y in 1..H - 1 {
            t.par_task_begin("row");
            t.work((W - 2) * (9 * 2 + 5));
            t.par_task_end();
        }
        t.par_sec_end(false);

        // Histogram (parallel with reduction): blocks of rows with ONE
        // private-histogram merge per block — merging per row would put
        // a contended critical section on every iteration and the lock
        // hand-off cost would dominate (try it: the prediction collapses
        // to ~4.5x).
        const ROWS_PER_BLOCK: u64 = 40;
        t.par_sec_begin("histogram");
        let mut y = 0;
        while y < H {
            t.par_task_begin("rows");
            let end = (y + ROWS_PER_BLOCK).min(H);
            t.work((end - y) * W * 6);
            t.lock_begin(1);
            t.work(256 * 2); // merge the whole private histogram
            t.lock_end(1);
            t.par_task_end();
            y = end;
        }
        t.par_sec_end(false);

        // CDF scan (serial — the profiler said so).
        t.work(256 * 4);
    }
}

fn main() {
    println!("step 1 — dependence profile of the serial program:\n");
    let report = dependence_pass();
    for s in report.suggestions() {
        println!("  {s}");
    }

    let parallel_loops = report
        .loops
        .iter()
        .filter(|l| l.verdict().is_parallel())
        .count();
    println!(
        "\n{} of {} loops are annotation candidates.\n",
        parallel_loops,
        report.loops.len()
    );
    assert_eq!(
        report.loops.iter().map(|l| l.verdict()).collect::<Vec<_>>(),
        vec![
            Verdict::Parallel,
            Verdict::ParallelWithReduction,
            Verdict::Serial
        ],
        "expected blur ∥, histogram ∥(reduction), scan serial"
    );

    println!("step 2 — Parallel Prophet on the annotated program:\n");
    let prophet = Prophet::new();
    let profiled = prophet.profile(&Annotated);
    for threads in [2u32, 4, 8, 12] {
        let pred = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    schedule: Schedule::static_block(),
                    emulator: Emulator::FastForward,
                    ..Default::default()
                },
            )
            .expect("prediction");
        println!("  {threads:>2} threads -> {:.2}x", pred.speedup);
    }
    println!(
        "\nThe serial CDF scan caps the curve (Amdahl) — the dependence \
         profiler told us exactly which loop is responsible."
    );
}
