//! LU reduction (the paper's Fig. 1(a)): triangular imbalance plus
//! frequent inner-loop parallelism. Compares Parallel Prophet's
//! predictions against the simulated ground truth and the
//! Suitability-like baseline, which overestimates the inner-loop
//! overhead (paper §VII-C).
//!
//! Run with `cargo run --release --example lu_reduction`.

use baselines::suitability_predict;
use machsim::{Paradigm, Schedule};
use prophet_core::{Emulator, PredictOptions, Prophet, SpeedupReport};
use workloads::ompscr::Lu;
use workloads::spec::Benchmark;
use workloads::{run_real, RealOptions};

fn main() {
    let lu = Lu { size: 192 }; // between test and paper sizes: quick but real
    let spec = lu.spec();
    println!("benchmark: {} ({})", spec.name, spec.input_desc);

    let prophet = Prophet::new();
    let profiled = prophet.profile(&lu);
    println!(
        "profiled: {} inner sections, {} stored nodes ({} logical)\n",
        profiled.tree.top_level_sections().len(),
        profiled.tree.len(),
        proftree::visit::logical_node_count(&profiled.tree),
    );

    let mut report = SpeedupReport::new(
        format!("{} schedule(static,1)", spec.name),
        vec!["Real".into(), "Pred".into(), "Suit".into()],
    );
    for threads in [2u32, 4, 6, 8, 10, 12] {
        let real = run_real(
            &profiled.tree,
            &RealOptions::new(threads, Paradigm::OpenMp, Schedule::static1()),
        )
        .expect("ground truth run");
        let pred = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    schedule: Schedule::static1(),
                    emulator: Emulator::Synthesizer,
                    ..Default::default()
                },
            )
            .expect("prediction");
        let suit = suitability_predict(&profiled.tree, threads);
        report.push_row(
            threads,
            vec![Some(real.speedup), Some(pred.speedup), Some(suit.speedup)],
        );
    }
    println!("{}", report.render());
    let err = report
        .mean_relative_error("Pred", "Real")
        .unwrap_or(f64::NAN);
    let suit_err = report
        .mean_relative_error("Suit", "Real")
        .unwrap_or(f64::NAN);
    println!(
        "mean relative error: Pred {:.1}%  Suit {:.1}%",
        err * 100.0,
        suit_err * 100.0
    );
}
