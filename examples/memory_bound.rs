//! Memory-bound speedup saturation (the paper's Fig. 2): NPB-FT's
//! speedup stalls as DRAM bandwidth saturates. Without the memory model
//! ("Pred") Parallel Prophet overestimates like Kismet/Suitability; with
//! burden factors ("PredM") it tracks the real curve.
//!
//! Run with `cargo run --release --example memory_bound`.

use cachesim::HierarchyConfig;
use machsim::{MachineConfig, Paradigm, Schedule};
use prophet_core::{Emulator, PredictOptions, Prophet, SpeedupReport};
use workloads::npb::Ft;
use workloads::spec::Benchmark;
use workloads::{run_real, RealOptions};

fn main() {
    // A smaller FT on a proportionally smaller LLC keeps the example
    // quick while staying several× over the cache (DESIGN.md §6).
    let ft = Ft {
        dim: 32,
        iters: 1,
        lines_per_task: 16,
    };
    let mut hierarchy = HierarchyConfig::westmere_scaled();
    hierarchy.llc.capacity_bytes = 128 << 10;
    hierarchy.llc.ways = 8;
    let machine = MachineConfig::westmere_scaled();

    let spec = ft.spec();
    println!(
        "benchmark: {} ({}, LLC {} KiB)",
        spec.name,
        spec.input_desc,
        hierarchy.llc.capacity_bytes >> 10
    );

    let prophet = Prophet::with_machine(machine, hierarchy);
    let profiled = prophet.profile(&ft);

    // Show the burden factors the memory model computed.
    for (i, &sec) in profiled.tree.top_level_sections().iter().enumerate() {
        if let proftree::NodeKind::Sec { burden, name, .. } = &profiled.tree.node(sec).kind {
            if !burden.is_unit() {
                println!("  section {i} ({name}): burden {:?}", burden.entries());
            }
        }
    }
    println!();

    let mut report = SpeedupReport::new(
        format!("{} (Fig. 2 shape)", spec.name),
        vec!["Real".into(), "Pred".into(), "PredM".into()],
    );
    for threads in [2u32, 4, 6, 8, 10, 12] {
        let mut real_opts = RealOptions::new(threads, Paradigm::OpenMp, Schedule::static_block());
        real_opts.machine = machine;
        let real = run_real(&profiled.tree, &real_opts).expect("ground truth");
        let base = PredictOptions {
            threads,
            schedule: Schedule::static_block(),
            emulator: Emulator::Synthesizer,
            ..Default::default()
        };
        let pred = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    memory_model: false,
                    ..base
                },
            )
            .expect("pred");
        let predm = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    memory_model: true,
                    ..base
                },
            )
            .expect("predm");
        report.push_row(
            threads,
            vec![Some(real.speedup), Some(pred.speedup), Some(predm.speedup)],
        );
    }
    println!("{}", report.render());
    println!(
        "errors vs Real: Pred {:.1}%, PredM {:.1}% — the memory model captures \
         the saturation.",
        report
            .mean_relative_error("Pred", "Real")
            .unwrap_or(f64::NAN)
            * 100.0,
        report
            .mean_relative_error("PredM", "Real")
            .unwrap_or(f64::NAN)
            * 100.0
    );
}
