//! Quickstart: annotate a serial loop, profile it once, and ask Parallel
//! Prophet how it would scale.
//!
//! Run with `cargo run --release --example quickstart`.

use machsim::Schedule;
use prophet_core::{Emulator, PredictOptions, Prophet, SpeedupReport};
use tracer::{AnnotatedProgram, Tracer};

/// A serial image-filter-like loop: rows cost more toward the bottom
/// (workload imbalance), and a shared histogram needs a lock.
struct FilterLoop;

impl AnnotatedProgram for FilterLoop {
    fn name(&self) -> &str {
        "filter_loop"
    }

    fn run(&self, t: &mut Tracer) {
        t.par_sec_begin("rows"); // PAR_SEC_BEGIN("rows")
        for row in 0..64u64 {
            t.par_task_begin("row"); // each iteration may run in parallel
            t.work(20_000 + row * 1_500); // the filter itself (imbalanced)
            t.lock_begin(1); // histogram update must be protected
            t.work(2_000);
            t.lock_end(1);
            t.par_task_end();
        }
        t.par_sec_end(false); // implicit barrier at loop end
    }
}

fn main() {
    let prophet = Prophet::new();

    // One profiling run builds the program tree and memory profile.
    let profiled = prophet.profile(&FilterLoop);
    println!(
        "profiled '{}': {} cycles serial, {} tree nodes, {:.2}x profiling slowdown\n",
        profiled.name,
        profiled.profile.net_cycles,
        profiled.tree.len(),
        profiled.profile.slowdown(),
    );

    // Predict speedups for 1-12 cores with both emulators.
    let threads = [1u32, 2, 4, 6, 8, 10, 12];
    let mut report = SpeedupReport::new(
        "filter_loop, schedule(dynamic,1)",
        vec!["FF".into(), "Synthesizer".into()],
    );
    for &t in &threads {
        let ff = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads: t,
                    schedule: Schedule::dynamic1(),
                    emulator: Emulator::FastForward,
                    ..Default::default()
                },
            )
            .expect("ff prediction");
        let syn = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads: t,
                    schedule: Schedule::dynamic1(),
                    emulator: Emulator::Synthesizer,
                    ..Default::default()
                },
            )
            .expect("synthesizer prediction");
        report.push_row(t, vec![Some(ff.speedup), Some(syn.speedup)]);
    }
    println!("{}", report.render());
    println!("Tip: the lock caps the speedup well below linear — try removing it.");
}
