//! Recursive FFT (the paper's Fig. 1(b)): recursive/nested parallelism
//! run under the Cilk-style work-stealing runtime. Demonstrates the
//! synthesizer's edge over the fast-forwarding emulator on recursion
//! (paper §IV-D and Table III).
//!
//! Run with `cargo run --release --example recursive_fft`.

use machsim::{Paradigm, Schedule};
use prophet_core::{Emulator, PredictOptions, Prophet, SpeedupReport};
use workloads::ompscr::Fft;
use workloads::spec::Benchmark;
use workloads::{run_real, RealOptions};

fn main() {
    let fft = Fft {
        n: 1 << 13,
        cutoff: 1 << 9,
        combine_cutoff: 1 << 10,
    };
    let spec = fft.spec();
    println!("benchmark: {} ({})", spec.name, spec.input_desc);

    let prophet = Prophet::new();
    let profiled = prophet.profile(&fft);
    let stats = proftree::TreeStats::gather(&profiled.tree);
    println!(
        "tree: {} nodes, max section depth {} (recursive spawns)\n",
        profiled.tree.len(),
        stats.max_section_depth
    );

    let mut report = SpeedupReport::new(
        format!("{} under Cilk work stealing", spec.name),
        vec!["Real".into(), "SYN".into(), "SYN(task)".into(), "FF".into()],
    );
    for threads in [2u32, 4, 6, 8, 12] {
        let real = run_real(
            &profiled.tree,
            &RealOptions::new(threads, Paradigm::CilkPlus, Schedule::static_block()),
        )
        .expect("ground truth");
        let syn = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    paradigm: Paradigm::CilkPlus,
                    emulator: Emulator::Synthesizer,
                    ..Default::default()
                },
            )
            .expect("synthesizer");
        // What if the same recursion ran on OpenMP 3.0 tasks instead?
        // The central queue costs a little against work stealing.
        let syn_task = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    paradigm: Paradigm::OmpTask,
                    emulator: Emulator::Synthesizer,
                    ..Default::default()
                },
            )
            .expect("task synthesizer");
        // The FF only implements an OpenMP-style emulator; on recursive
        // trees it deviates — that's the point of this example.
        let ff = prophet
            .predict(
                &profiled,
                &PredictOptions {
                    threads,
                    emulator: Emulator::FastForward,
                    schedule: Schedule::dynamic1(),
                    ..Default::default()
                },
            )
            .expect("ff");
        report.push_row(
            threads,
            vec![
                Some(real.speedup),
                Some(syn.speedup),
                Some(syn_task.speedup),
                Some(ff.speedup),
            ],
        );
    }
    println!("{}", report.render());
    println!(
        "SYN error {:.1}% vs FF error {:.1}% — the synthesizer models the \
         work-stealing runtime the FF cannot.",
        report
            .mean_relative_error("SYN", "Real")
            .unwrap_or(f64::NAN)
            * 100.0,
        report.mean_relative_error("FF", "Real").unwrap_or(f64::NAN) * 100.0
    );
}
